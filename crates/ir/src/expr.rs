//! Array references and the scalar computation language.
//!
//! The right-hand sides of the paper's kernels need only `+ - * /` and
//! `sqrt` over `f64`, with affine array subscripts; [`ScalarExpr`] is
//! exactly that.

use shackle_polyhedra::LinExpr;
use std::fmt;

/// A reference to an array element with affine subscripts, e.g.
/// `A[I, J-1]`.
///
/// # Examples
///
/// ```
/// use shackle_ir::ArrayRef;
/// use shackle_polyhedra::LinExpr;
/// let r = ArrayRef::new("A", vec![LinExpr::var("I"), LinExpr::var("J")]);
/// assert_eq!(r.to_string(), "A[I, J]");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayRef {
    array: String,
    indices: Vec<LinExpr>,
}

impl ArrayRef {
    /// Construct a reference.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn new(array: impl Into<String>, indices: Vec<LinExpr>) -> Self {
        assert!(!indices.is_empty(), "array references need subscripts");
        Self {
            array: array.into(),
            indices,
        }
    }

    /// Shorthand: subscripts that are plain loop variables.
    pub fn vars(array: impl Into<String>, names: &[&str]) -> Self {
        Self::new(array, names.iter().map(|n| LinExpr::var(*n)).collect())
    }

    /// The referenced array's name.
    pub fn array(&self) -> &str {
        &self.array
    }

    /// The affine subscript expressions.
    pub fn indices(&self) -> &[LinExpr] {
        &self.indices
    }

    /// The *access matrix* of the paper's Theorem 2: one row per array
    /// dimension, one column per entry of `loop_vars`, containing the
    /// coefficient of that loop variable in that subscript. Constant
    /// terms and parameters are dropped (the theorem concerns the linear
    /// part only).
    pub fn access_matrix(&self, loop_vars: &[&str]) -> Vec<Vec<i64>> {
        self.indices
            .iter()
            .map(|ix| loop_vars.iter().map(|v| ix.coeff(v)).collect())
            .collect()
    }

    /// Substitute an affine expression for a variable in every
    /// subscript.
    pub fn substitute(&self, var: &str, replacement: &LinExpr) -> ArrayRef {
        ArrayRef {
            array: self.array.clone(),
            indices: self
                .indices
                .iter()
                .map(|ix| ix.substitute(var, replacement))
                .collect(),
        }
    }

    /// Rename loop variables in the subscripts.
    pub fn rename_vars(&self, f: &dyn Fn(&str) -> Option<String>) -> ArrayRef {
        let indices = self
            .indices
            .iter()
            .map(|ix| {
                let mut out = ix.clone();
                for v in ix.vars() {
                    if let Some(n) = f(v) {
                        out = out.rename(v, &n);
                    }
                }
                out
            })
            .collect();
        ArrayRef {
            array: self.array.clone(),
            indices,
        }
    }
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.array)?;
        for (i, ix) in self.indices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{ix}")?;
        }
        write!(f, "]")
    }
}

/// A scalar `f64` expression: the computation language of statements.
#[derive(Clone, Debug, PartialEq)]
pub enum ScalarExpr {
    /// Load from an array element.
    Ref(ArrayRef),
    /// A floating-point literal.
    Const(f64),
    /// Addition.
    Add(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Subtraction.
    Sub(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Multiplication.
    Mul(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Division.
    Div(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Square root.
    Sqrt(Box<ScalarExpr>),
    /// Negation.
    Neg(Box<ScalarExpr>),
    /// Sign: −1.0 for negative arguments, +1.0 otherwise.
    Sign(Box<ScalarExpr>),
}

impl ScalarExpr {
    /// Load from an array reference.
    pub fn load(r: ArrayRef) -> Self {
        ScalarExpr::Ref(r)
    }

    /// All array references read by this expression, left to right.
    pub fn reads(&self) -> Vec<&ArrayRef> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads<'a>(&'a self, out: &mut Vec<&'a ArrayRef>) {
        match self {
            ScalarExpr::Ref(r) => out.push(r),
            ScalarExpr::Const(_) => {}
            ScalarExpr::Add(a, b)
            | ScalarExpr::Sub(a, b)
            | ScalarExpr::Mul(a, b)
            | ScalarExpr::Div(a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            ScalarExpr::Sqrt(a) | ScalarExpr::Neg(a) | ScalarExpr::Sign(a) => a.collect_reads(out),
        }
    }

    /// Substitute an affine expression for a variable in every contained
    /// reference.
    pub fn substitute(&self, var: &str, replacement: &LinExpr) -> ScalarExpr {
        match self {
            ScalarExpr::Ref(r) => ScalarExpr::Ref(r.substitute(var, replacement)),
            ScalarExpr::Const(c) => ScalarExpr::Const(*c),
            ScalarExpr::Add(a, b) => ScalarExpr::Add(
                Box::new(a.substitute(var, replacement)),
                Box::new(b.substitute(var, replacement)),
            ),
            ScalarExpr::Sub(a, b) => ScalarExpr::Sub(
                Box::new(a.substitute(var, replacement)),
                Box::new(b.substitute(var, replacement)),
            ),
            ScalarExpr::Mul(a, b) => ScalarExpr::Mul(
                Box::new(a.substitute(var, replacement)),
                Box::new(b.substitute(var, replacement)),
            ),
            ScalarExpr::Div(a, b) => ScalarExpr::Div(
                Box::new(a.substitute(var, replacement)),
                Box::new(b.substitute(var, replacement)),
            ),
            ScalarExpr::Sqrt(a) => ScalarExpr::Sqrt(Box::new(a.substitute(var, replacement))),
            ScalarExpr::Neg(a) => ScalarExpr::Neg(Box::new(a.substitute(var, replacement))),
            ScalarExpr::Sign(a) => ScalarExpr::Sign(Box::new(a.substitute(var, replacement))),
        }
    }

    /// Rename loop variables in every contained reference.
    pub fn rename_vars(&self, f: &dyn Fn(&str) -> Option<String>) -> ScalarExpr {
        match self {
            ScalarExpr::Ref(r) => ScalarExpr::Ref(r.rename_vars(f)),
            ScalarExpr::Const(c) => ScalarExpr::Const(*c),
            ScalarExpr::Add(a, b) => {
                ScalarExpr::Add(Box::new(a.rename_vars(f)), Box::new(b.rename_vars(f)))
            }
            ScalarExpr::Sub(a, b) => {
                ScalarExpr::Sub(Box::new(a.rename_vars(f)), Box::new(b.rename_vars(f)))
            }
            ScalarExpr::Mul(a, b) => {
                ScalarExpr::Mul(Box::new(a.rename_vars(f)), Box::new(b.rename_vars(f)))
            }
            ScalarExpr::Div(a, b) => {
                ScalarExpr::Div(Box::new(a.rename_vars(f)), Box::new(b.rename_vars(f)))
            }
            ScalarExpr::Sqrt(a) => ScalarExpr::Sqrt(Box::new(a.rename_vars(f))),
            ScalarExpr::Neg(a) => ScalarExpr::Neg(Box::new(a.rename_vars(f))),
            ScalarExpr::Sign(a) => ScalarExpr::Sign(Box::new(a.rename_vars(f))),
        }
    }
}

impl From<ArrayRef> for ScalarExpr {
    fn from(r: ArrayRef) -> Self {
        ScalarExpr::Ref(r)
    }
}

impl From<f64> for ScalarExpr {
    fn from(c: f64) -> Self {
        ScalarExpr::Const(c)
    }
}

impl std::ops::Add for ScalarExpr {
    type Output = ScalarExpr;
    fn add(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for ScalarExpr {
    type Output = ScalarExpr;
    fn sub(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for ScalarExpr {
    type Output = ScalarExpr;
    fn mul(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Div for ScalarExpr {
    type Output = ScalarExpr;
    fn div(self, rhs: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Div(Box::new(self), Box::new(rhs))
    }
}

impl ScalarExpr {
    /// `sqrt(self)`.
    pub fn sqrt(self) -> ScalarExpr {
        ScalarExpr::Sqrt(Box::new(self))
    }

    /// `sign(self)`: −1.0 if negative, +1.0 otherwise.
    pub fn sign(self) -> ScalarExpr {
        ScalarExpr::Sign(Box::new(self))
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Ref(r) => write!(f, "{r}"),
            ScalarExpr::Const(c) => write!(f, "{c}"),
            ScalarExpr::Add(a, b) => write!(f, "({a} + {b})"),
            ScalarExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            ScalarExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            ScalarExpr::Div(a, b) => write!(f, "({a} / {b})"),
            ScalarExpr::Sqrt(a) => write!(f, "sqrt({a})"),
            ScalarExpr::Neg(a) => write!(f, "(-{a})"),
            ScalarExpr::Sign(a) => write!(f, "sign({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aref(name: &str, vars: &[&str]) -> ArrayRef {
        ArrayRef::vars(name, vars)
    }

    #[test]
    fn reads_collects_in_order() {
        let e = ScalarExpr::from(aref("A", &["i", "k"])) * aref("B", &["k", "j"]).into()
            + ScalarExpr::from(aref("C", &["i", "j"]));
        let rs = e.reads();
        let names: Vec<&str> = rs.iter().map(|r| r.array()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn access_matrix_matches_theorem2_examples() {
        // C[I,J] over loops (I,J,K) — the paper's example in §6.2
        let c = aref("C", &["I", "J"]);
        assert_eq!(
            c.access_matrix(&["I", "J", "K"]),
            vec![vec![1, 0, 0], vec![0, 1, 0]]
        );
        // B[K,J]
        let b = aref("B", &["K", "J"]);
        assert_eq!(
            b.access_matrix(&["I", "J", "K"]),
            vec![vec![0, 0, 1], vec![0, 1, 0]]
        );
    }

    #[test]
    fn display_expression() {
        let e = (ScalarExpr::from(aref("A", &["i"])) - ScalarExpr::Const(1.0)).sqrt();
        assert_eq!(e.to_string(), "sqrt((A[i] - 1))");
    }

    #[test]
    fn rename_vars_in_ref() {
        let r = ArrayRef::new(
            "X",
            vec![LinExpr::var("i") - LinExpr::constant(1), LinExpr::var("k")],
        );
        let renamed = r.rename_vars(&|v| {
            if v == "i" {
                Some("t2".to_string())
            } else {
                None
            }
        });
        assert_eq!(renamed.to_string(), "X[t2 - 1, k]");
    }
}
