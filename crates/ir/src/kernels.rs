//! IR builders for the paper's benchmark programs ("input codes").
//!
//! These are transcriptions of the codes the paper transforms:
//!
//! * Figure 1(i) — matrix multiplication in I-J-K order,
//! * Figure 1(ii) — right-looking Cholesky factorization,
//! * Figure 1(iii) — left-looking Cholesky factorization,
//! * Figure 14(i) — the ADI kernel (from McKinley et al.'s study),
//! * §7 — QR factorization by Householder reflections (pointwise
//!   algorithm), the GMTRY Gaussian-elimination kernel, and banded
//!   Cholesky (ordinary Cholesky restricted to a band).
//!
//! All use 1-based FORTRAN-style index spaces with the symbolic problem
//! size `N` (and half-bandwidth `P` for the banded code).

use crate::{if_, loop_, stmt, ArrayDecl, ArrayRef, Program, ScalarExpr, Statement};
use shackle_polyhedra::{Constraint, LinExpr};

fn n() -> LinExpr {
    LinExpr::var("N")
}

fn one() -> LinExpr {
    LinExpr::constant(1)
}

fn v(name: &str) -> LinExpr {
    LinExpr::var(name)
}

fn ld(r: ArrayRef) -> ScalarExpr {
    ScalarExpr::from(r)
}

/// Figure 1(i): matrix multiplication, I-J-K loop order.
///
/// ```text
/// do I = 1..N
///   do J = 1..N
///     do K = 1..N
///       C[I,J] = C[I,J] + A[I,K] * B[K,J]
/// ```
pub fn matmul_ijk() -> Program {
    let c = ArrayRef::vars("C", &["I", "J"]);
    let a = ArrayRef::vars("A", &["I", "K"]);
    let b = ArrayRef::vars("B", &["K", "J"]);
    let s = Statement::new("S1", c.clone(), ld(c) + ld(a) * ld(b));
    Program::new(
        "matmul-ijk",
        vec!["N".into()],
        vec![
            ArrayDecl::square("C", "N"),
            ArrayDecl::square("A", "N"),
            ArrayDecl::square("B", "N"),
        ],
        vec![s],
        vec![loop_(
            "I",
            one(),
            n(),
            vec![loop_(
                "J",
                one(),
                n(),
                vec![loop_("K", one(), n(), vec![stmt(0)])],
            )],
        )],
    )
}

/// Figure 1(ii): right-looking Cholesky factorization.
///
/// ```text
/// do J = 1..N
///   S1: A[J,J] = sqrt(A[J,J])
///   do I = J+1..N
///     S2: A[I,J] = A[I,J] / A[J,J]
///   do L = J+1..N
///     do K = J+1..L
///       S3: A[L,K] = A[L,K] - A[L,J] * A[K,J]
/// ```
pub fn cholesky_right() -> Program {
    let ajj = ArrayRef::vars("A", &["J", "J"]);
    let aij = ArrayRef::vars("A", &["I", "J"]);
    let alk = ArrayRef::vars("A", &["L", "K"]);
    let alj = ArrayRef::vars("A", &["L", "J"]);
    let akj = ArrayRef::vars("A", &["K", "J"]);
    let s1 = Statement::new("S1", ajj.clone(), ld(ajj.clone()).sqrt());
    let s2 = Statement::new("S2", aij.clone(), ld(aij) / ld(ajj));
    let s3 = Statement::new("S3", alk.clone(), ld(alk) - ld(alj) * ld(akj));
    Program::new(
        "cholesky-right",
        vec!["N".into()],
        vec![ArrayDecl::square("A", "N")],
        vec![s1, s2, s3],
        vec![loop_(
            "J",
            one(),
            n(),
            vec![
                stmt(0),
                loop_("I", v("J") + one(), n(), vec![stmt(1)]),
                loop_(
                    "L",
                    v("J") + one(),
                    n(),
                    vec![loop_("K", v("J") + one(), v("L"), vec![stmt(2)])],
                ),
            ],
        )],
    )
}

/// Figure 1(iii): left-looking Cholesky factorization.
///
/// ```text
/// do J = 1..N
///   do L = J..N
///     do K = 1..J-1
///       S3: A[L,J] = A[L,J] - A[L,K] * A[J,K]
///   S1: A[J,J] = sqrt(A[J,J])
///   do I = J+1..N
///     S2: A[I,J] = A[I,J] / A[J,J]
/// ```
pub fn cholesky_left() -> Program {
    let ajj = ArrayRef::vars("A", &["J", "J"]);
    let aij = ArrayRef::vars("A", &["I", "J"]);
    let alj = ArrayRef::vars("A", &["L", "J"]);
    let alk = ArrayRef::vars("A", &["L", "K"]);
    let ajk = ArrayRef::vars("A", &["J", "K"]);
    let s3 = Statement::new("S3", alj.clone(), ld(alj) - ld(alk) * ld(ajk));
    let s1 = Statement::new("S1", ajj.clone(), ld(ajj.clone()).sqrt());
    let s2 = Statement::new("S2", aij.clone(), ld(aij) / ld(ajj));
    // statement ids follow the paper's labels: 0 = S1, 1 = S2, 2 = S3
    Program::new(
        "cholesky-left",
        vec!["N".into()],
        vec![ArrayDecl::square("A", "N")],
        vec![s1, s2, s3],
        vec![loop_(
            "J",
            one(),
            n(),
            vec![
                loop_(
                    "L",
                    v("J"),
                    n(),
                    vec![loop_("K", one(), v("J") - one(), vec![stmt(2)])],
                ),
                stmt(0),
                loop_("I", v("J") + one(), n(), vec![stmt(1)]),
            ],
        )],
    )
}

/// Figure 14(i): the ADI kernel (as produced by a FORTRAN-90
/// scalarizer).
///
/// ```text
/// do i = 2..N
///   do k = 1..N
///     S1: X[i,k] = X[i,k] - X[i-1,k] * A[i,k] / B[i-1,k]
///   do k = 1..N
///     S2: B[i,k] = B[i,k] - A[i,k] * A[i,k] / B[i-1,k]
/// ```
pub fn adi() -> Program {
    let xik = ArrayRef::vars("X", &["i", "k"]);
    let xprev = ArrayRef::new("X", vec![v("i") - one(), v("k")]);
    let aik = ArrayRef::vars("A", &["i", "k"]);
    let bprev = ArrayRef::new("B", vec![v("i") - one(), v("k")]);
    let bik = ArrayRef::vars("B", &["i", "k"]);
    let s1 = Statement::new(
        "S1",
        xik.clone(),
        ld(xik) - ld(xprev) * ld(aik.clone()) / ld(bprev.clone()),
    );
    let s2 = Statement::new(
        "S2",
        bik.clone(),
        ld(bik) - ld(aik.clone()) * ld(aik) / ld(bprev),
    );
    Program::new(
        "adi",
        vec!["N".into()],
        vec![
            ArrayDecl::square("X", "N"),
            ArrayDecl::square("A", "N"),
            ArrayDecl::square("B", "N"),
        ],
        vec![s1, s2],
        vec![loop_(
            "i",
            LinExpr::constant(2),
            n(),
            vec![
                loop_("k", one(), n(), vec![stmt(0)]),
                loop_("k", one(), n(), vec![stmt(1)]),
            ],
        )],
    )
}

/// The GMTRY kernel's computational core (§7): Gaussian elimination
/// without pivoting.
///
/// ```text
/// do K = 1..N
///   do I = K+1..N
///     S1: A[I,K] = A[I,K] / A[K,K]
///   do J = K+1..N
///     do I = K+1..N
///       S2: A[I,J] = A[I,J] - A[I,K] * A[K,J]
/// ```
///
/// The update nest is column-inner (`I` innermost), the natural
/// FORTRAN form of the SPEC kernel.
pub fn gauss() -> Program {
    let aik = ArrayRef::vars("A", &["I", "K"]);
    let akk = ArrayRef::vars("A", &["K", "K"]);
    let aij = ArrayRef::vars("A", &["I", "J"]);
    let akj = ArrayRef::vars("A", &["K", "J"]);
    let s1 = Statement::new("S1", aik.clone(), ld(aik.clone()) / ld(akk));
    let s2 = Statement::new("S2", aij.clone(), ld(aij) - ld(aik) * ld(akj));
    Program::new(
        "gauss",
        vec!["N".into()],
        vec![ArrayDecl::square("A", "N")],
        vec![s1, s2],
        vec![loop_(
            "K",
            one(),
            n(),
            vec![
                loop_("I", v("K") + one(), n(), vec![stmt(0)]),
                loop_(
                    "J",
                    v("K") + one(),
                    n(),
                    vec![loop_("I", v("K") + one(), n(), vec![stmt(1)])],
                ),
            ],
        )],
    )
}

/// QR factorization by Householder reflections, pointwise algorithm
/// (§7). For each column `K`: form the Householder vector `v` in place
/// (column `K` from row `K` down), then reflect the trailing columns.
///
/// The reductions are expressed through auxiliary 1-D arrays (`T[K]`
/// holds `‖x‖²` and then `vᵀv`; `W[J]` holds `vᵀ·a_J`); all subscripts
/// stay affine:
///
/// ```text
/// do K = 1..N
///   S1: T[K]   = A[K,K]*A[K,K]
///   do I = K+1..N
///     S2: T[K] = T[K] + A[I,K]*A[I,K]             (‖x‖²)
///   S3: A[K,K] = A[K,K] + sign(A[K,K])*sqrt(T[K]) (v = x ± ‖x‖·e1)
///   S4: T[K]   = A[K,K]*A[K,K]
///   do I = K+1..N
///     S5: T[K] = T[K] + A[I,K]*A[I,K]             (vᵀv)
///   do J = K+1..N
///     S6: W[J] = 0
///     do I = K..N
///       S7: W[J] = W[J] + A[I,K]*A[I,J]           (vᵀ·a_J)
///     do I = K..N
///       S8: A[I,J] = A[I,J] - 2*A[I,K]*W[J]/T[K]  (reflect)
/// ```
///
/// This is the "same … pointwise algorithm" the paper blocks on columns
/// only (dependences prevent two-dimensional blocking).
pub fn qr_householder() -> Program {
    let t = |ix: LinExpr| ArrayRef::new("T", vec![ix]);
    let w = |ix: LinExpr| ArrayRef::new("W", vec![ix]);
    let a = |r: LinExpr, c: LinExpr| ArrayRef::new("A", vec![r, c]);
    let akk = a(v("K"), v("K"));
    let akk2 = akk.clone();
    let norm2 =
        move |label: &str| Statement::new(label, t(v("K")), ld(akk2.clone()) * ld(akk2.clone()));
    let accum = |label: &str| {
        Statement::new(
            label,
            t(v("K")),
            ld(t(v("K"))) + ld(a(v("I"), v("K"))) * ld(a(v("I"), v("K"))),
        )
    };
    let s1 = norm2("S1");
    let s2 = accum("S2");
    let s3 = Statement::new(
        "S3",
        akk.clone(),
        ld(akk.clone()) + ld(akk).sign() * ld(t(v("K"))).sqrt(),
    );
    let s4 = norm2("S4");
    let s5 = accum("S5");
    let s6 = Statement::new("S6", w(v("J")), ScalarExpr::Const(0.0));
    let s7 = Statement::new(
        "S7",
        w(v("J")),
        ld(w(v("J"))) + ld(a(v("I"), v("K"))) * ld(a(v("I"), v("J"))),
    );
    let s8 = Statement::new(
        "S8",
        a(v("I"), v("J")),
        ld(a(v("I"), v("J")))
            - ScalarExpr::Const(2.0) * ld(a(v("I"), v("K"))) * ld(w(v("J"))) / ld(t(v("K"))),
    );
    Program::new(
        "qr-householder",
        vec!["N".into()],
        vec![
            ArrayDecl::square("A", "N"),
            ArrayDecl::new("T", vec![n()]),
            ArrayDecl::new("W", vec![n()]),
        ],
        vec![s1, s2, s3, s4, s5, s6, s7, s8],
        vec![loop_(
            "K",
            one(),
            n(),
            vec![
                stmt(0),
                loop_("I", v("K") + one(), n(), vec![stmt(1)]),
                stmt(2),
                stmt(3),
                loop_("I", v("K") + one(), n(), vec![stmt(4)]),
                loop_(
                    "J",
                    v("K") + one(),
                    n(),
                    vec![
                        stmt(5),
                        loop_("I", v("K"), n(), vec![stmt(6)]),
                        loop_("I", v("K"), n(), vec![stmt(7)]),
                    ],
                ),
            ],
        )],
    )
}

/// Banded Cholesky (§7): "regular Cholesky factorization restricted to
/// accessing data in the band" — right-looking Cholesky with guards
/// `|row - col| <= P` (half-bandwidth `P`, a program parameter).
pub fn banded_cholesky() -> Program {
    let p = || v("P");
    let ajj = ArrayRef::vars("A", &["J", "J"]);
    let aij = ArrayRef::vars("A", &["I", "J"]);
    let alk = ArrayRef::vars("A", &["L", "K"]);
    let alj = ArrayRef::vars("A", &["L", "J"]);
    let akj = ArrayRef::vars("A", &["K", "J"]);
    let s1 = Statement::new("S1", ajj.clone(), ld(ajj.clone()).sqrt());
    let s2 = Statement::new("S2", aij.clone(), ld(aij) / ld(ajj));
    let s3 = Statement::new("S3", alk.clone(), ld(alk) - ld(alj) * ld(akj));
    Program::new(
        "banded-cholesky",
        vec!["N".into(), "P".into()],
        vec![ArrayDecl::square("A", "N")],
        vec![s1, s2, s3],
        vec![loop_(
            "J",
            one(),
            n(),
            vec![
                stmt(0),
                loop_(
                    "I",
                    v("J") + one(),
                    n(),
                    vec![if_(
                        vec![Constraint::le(v("I") - v("J"), p())],
                        vec![stmt(1)],
                    )],
                ),
                loop_(
                    "L",
                    v("J") + one(),
                    n(),
                    vec![loop_(
                        "K",
                        v("J") + one(),
                        v("L"),
                        vec![if_(
                            vec![
                                Constraint::le(v("L") - v("J"), p()),
                                Constraint::le(v("K") - v("J"), p()),
                                Constraint::le(v("L") - v("K"), p()),
                            ],
                            vec![stmt(2)],
                        )],
                    )],
                ),
            ],
        )],
    )
}

/// Triangular back-solve `U·x = b` (upper triangular, solved from the
/// last unknown upward) — the paper's §8 example of a code whose blocks
/// cannot legally be walked "top to bottom, left to right": the data
/// flows from high indices to low, so the blocking must traverse
/// bottom-to-top (a reversed cut set).
///
/// Written with the substitution `i = N+1−Ip` so all loops have unit
/// step and affine bounds:
///
/// ```text
/// do Ip = 1..N                      (i = N+1-Ip runs N..1)
///   S1: X[N+1-Ip] = X[N+1-Ip] / U[N+1-Ip, N+1-Ip]
///   do Jp = Ip+1..N                 (j = N+1-Jp < i)
///     S2: X[N+1-Jp] = X[N+1-Jp] - U[N+1-Jp, N+1-Ip] * X[N+1-Ip]
/// ```
pub fn backsolve() -> Program {
    let i = || n() + one() - v("Ip");
    let j = || n() + one() - v("Jp");
    let x = |e: LinExpr| ArrayRef::new("X", vec![e]);
    let u = |r: LinExpr, c: LinExpr| ArrayRef::new("U", vec![r, c]);
    let s1 = Statement::new("S1", x(i()), ld(x(i())) / ld(u(i(), i())));
    let s2 = Statement::new("S2", x(j()), ld(x(j())) - ld(u(j(), i())) * ld(x(i())));
    Program::new(
        "backsolve",
        vec!["N".into()],
        vec![ArrayDecl::new("X", vec![n()]), ArrayDecl::square("U", "N")],
        vec![s1, s2],
        vec![loop_(
            "Ip",
            one(),
            n(),
            vec![stmt(0), loop_("Jp", v("Ip") + one(), n(), vec![stmt(1)])],
        )],
    )
}

/// A 1-D Gauss–Seidel relaxation sweep — the paper's §8 example of a
/// code for which *no* single sweep over the blocked array is legal
/// ("an array element is eventually affected by every other element"),
/// motivating the multipass executor in `shackle-exec::multipass`.
///
/// ```text
/// do T = 1..S
///   do I = 2..N-1
///     S1: A[I] = 0.5 * (A[I-1] + A[I+1])
/// ```
pub fn gauss_seidel_1d() -> Program {
    let a = |e: LinExpr| ArrayRef::new("A", vec![e]);
    let s1 = Statement::new(
        "S1",
        a(v("I")),
        ScalarExpr::Const(0.5) * (ld(a(v("I") - one())) + ld(a(v("I") + one()))),
    );
    Program::new(
        "gauss-seidel-1d",
        vec!["N".into(), "S".into()],
        vec![ArrayDecl::new("A", vec![n()])],
        vec![s1],
        vec![loop_(
            "T",
            one(),
            v("S"),
            vec![loop_("I", LinExpr::constant(2), n() - one(), vec![stmt(0)])],
        )],
    )
}

/// Symmetric rank-k update (SYRK): `C ← C + A·Aᵀ`, lower triangle only.
/// The BLAS-3 sibling of matmul with a triangular iteration space — the
/// same two-dimensional blocking applies, but the footprint of a block
/// row is asymmetric in `I` and `J`, which is what makes rectangular
/// blocks interesting here.
///
/// ```text
/// do I = 1..N
///   do J = 1..I
///     do K = 1..N
///       S1: C[I,J] = C[I,J] + A[I,K] * A[J,K]
/// ```
pub fn syrk() -> Program {
    let c = ArrayRef::vars("C", &["I", "J"]);
    let aik = ArrayRef::vars("A", &["I", "K"]);
    let ajk = ArrayRef::vars("A", &["J", "K"]);
    let s = Statement::new("S1", c.clone(), ld(c) + ld(aik) * ld(ajk));
    Program::new(
        "syrk",
        vec!["N".into()],
        vec![ArrayDecl::square("C", "N"), ArrayDecl::square("A", "N")],
        vec![s],
        vec![loop_(
            "I",
            one(),
            n(),
            vec![loop_(
                "J",
                one(),
                v("I"),
                vec![loop_("K", one(), n(), vec![stmt(0)])],
            )],
        )],
    )
}

/// One out-of-place 2-D Jacobi (heat) relaxation sweep — the
/// relaxation-code family §9 names as a target beyond the
/// factorizations. A single sweep writes `V` from `U`, so blocking `V`
/// is legal (unlike the in-place Gauss–Seidel sweep, where every
/// element eventually affects every other and no single-sweep blocking
/// exists).
///
/// ```text
/// do I = 2..N-1
///   do J = 2..N-1
///     S1: V[I,J] = 0.25 * (U[I-1,J] + U[I+1,J] + U[I,J-1] + U[I,J+1])
/// ```
pub fn jacobi2d() -> Program {
    let u = |r: LinExpr, c: LinExpr| ArrayRef::new("U", vec![r, c]);
    let vij = ArrayRef::vars("V", &["I", "J"]);
    let s = Statement::new(
        "S1",
        vij,
        ScalarExpr::Const(0.25)
            * (ld(u(v("I") - one(), v("J")))
                + ld(u(v("I") + one(), v("J")))
                + ld(u(v("I"), v("J") - one()))
                + ld(u(v("I"), v("J") + one()))),
    );
    Program::new(
        "jacobi2d",
        vec!["N".into()],
        vec![ArrayDecl::square("V", "N"), ArrayDecl::square("U", "N")],
        vec![s],
        vec![loop_(
            "I",
            LinExpr::constant(2),
            n() - one(),
            vec![loop_("J", LinExpr::constant(2), n() - one(), vec![stmt(0)])],
        )],
    )
}

/// A rank-4 tensor contraction over two rank-3 operands — the kind of
/// kernel coupled-cluster codes block: two contracted indices (`K`,
/// `L`), and the operands transpose them relative to each other.
///
/// ```text
/// do I = 1..N
///   do J = 1..N
///     do K = 1..N
///       do L = 1..N
///         S1: C[I,J] = C[I,J] + A[I,K,L] * B[L,K,J]
/// ```
pub fn tensor_contract() -> Program {
    let c = ArrayRef::vars("C", &["I", "J"]);
    let a = ArrayRef::vars("A", &["I", "K", "L"]);
    let b = ArrayRef::vars("B", &["L", "K", "J"]);
    let s = Statement::new("S1", c.clone(), ld(c) + ld(a) * ld(b));
    Program::new(
        "tensor-contract",
        vec!["N".into()],
        vec![
            ArrayDecl::square("C", "N"),
            ArrayDecl::new("A", vec![n(), n(), n()]),
            ArrayDecl::new("B", vec![n(), n(), n()]),
        ],
        vec![s],
        vec![loop_(
            "I",
            one(),
            n(),
            vec![loop_(
                "J",
                one(),
                n(),
                vec![loop_(
                    "K",
                    one(),
                    n(),
                    vec![loop_("L", one(), n(), vec![stmt(0)])],
                )],
            )],
        )],
    )
}

/// A kernel builder paired with its registry name, as listed by
/// [`all`].
pub type KernelBuilder = (&'static str, fn() -> Program);

/// Every kernel builder in this module, keyed by its builder name —
/// the single enumeration that harness-coverage tests check against,
/// so a new kernel cannot silently stay a dead end the way `backsolve`
/// and `gauss_seidel_1d` once did.
pub fn all() -> Vec<KernelBuilder> {
    vec![
        ("matmul_ijk", matmul_ijk as fn() -> Program),
        ("cholesky_right", cholesky_right),
        ("cholesky_left", cholesky_left),
        ("adi", adi),
        ("gauss", gauss),
        ("qr_householder", qr_householder),
        ("banded_cholesky", banded_cholesky),
        ("backsolve", backsolve),
        ("gauss_seidel_1d", gauss_seidel_1d),
        ("syrk", syrk),
        ("jacobi2d", jacobi2d),
        ("tensor_contract", tensor_contract),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_validate() {
        // Program::new panics on structural errors, so constructing each
        // kernel is itself the test.
        for (_, mk) in all() {
            let p = mk();
            assert!(!p.stmts().is_empty());
            // display should not panic and should contain each label
            let text = p.to_string();
            for s in p.stmts() {
                assert!(
                    text.contains(s.label()),
                    "{} missing in:\n{text}",
                    s.label()
                );
            }
        }
    }

    #[test]
    fn registry_names_match_builders() {
        let reg = all();
        assert_eq!(reg.len(), 12);
        let mut names: Vec<&str> = reg.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "duplicate registry names");
        // Builder keys are the program names with `-` → `_`.
        for (key, mk) in reg {
            assert_eq!(key, mk().name().replace('-', "_"));
        }
    }

    #[test]
    fn syrk_is_triangular_and_tensor_is_rank3() {
        let p = syrk();
        assert_eq!(p.context(0).iter_vars(), vec!["I", "J", "K"]);
        // J <= I
        assert!(!p.context(0).domain().eval(&|v| match v {
            "N" => 10,
            "I" => 2,
            "J" => 5,
            "K" => 1,
            _ => 0,
        }));
        let t = tensor_contract();
        assert_eq!(t.arrays()[1].dims().len(), 3);
        assert_eq!(t.arrays()[2].dims().len(), 3);
        assert_eq!(t.context(0).iter_vars(), vec!["I", "J", "K", "L"]);
    }

    #[test]
    fn cholesky_right_structure_matches_fig1() {
        let p = cholesky_right();
        let c1 = p.context(0);
        assert_eq!(c1.iter_vars(), vec!["J"]);
        let c3 = p.context(2);
        assert_eq!(c3.iter_vars(), vec!["J", "L", "K"]);
        // triangular bounds: K <= L
        assert!(!c3.domain().eval(&|v| match v {
            "N" => 10,
            "J" => 1,
            "L" => 3,
            "K" => 4,
            _ => 0,
        }));
    }

    #[test]
    fn left_and_right_cholesky_share_labels() {
        let l = cholesky_left();
        let r = cholesky_right();
        assert_eq!(l.stmts()[0].label(), r.stmts()[0].label());
        // left-looking visits S3 before S1 textually
        assert_eq!(l.stmt_order(), vec![2, 0, 1]);
        assert_eq!(r.stmt_order(), vec![0, 1, 2]);
    }

    #[test]
    fn adi_has_two_perfect_k_loops() {
        let p = adi();
        assert_eq!(p.context(0).iter_vars(), vec!["i", "k"]);
        assert_eq!(p.context(1).iter_vars(), vec!["i", "k"]);
    }

    #[test]
    fn banded_guards_restrict_domain() {
        let p = banded_cholesky();
        let dom = p.context(2).domain();
        // L - J <= P enforced
        assert!(!dom.eval(&|v| match v {
            "N" => 20,
            "P" => 2,
            "J" => 1,
            "L" => 10,
            "K" => 2,
            _ => 0,
        }));
        assert!(dom.eval(&|v| match v {
            "N" => 20,
            "P" => 4,
            "J" => 1,
            "L" => 3,
            "K" => 2,
            _ => 0,
        }));
    }
}
