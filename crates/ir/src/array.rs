//! Array declarations.

use shackle_polyhedra::LinExpr;
use std::fmt;

/// A dense rectangular array with 1-based indexing (FORTRAN style, like
/// the paper's codes) whose extents are affine in the program parameters.
///
/// `A(N, N)` has `dims = [N, N]` and valid subscripts `1 ..= N` in each
/// dimension.
///
/// # Examples
///
/// ```
/// use shackle_ir::ArrayDecl;
/// use shackle_polyhedra::LinExpr;
/// let a = ArrayDecl::new("A", vec![LinExpr::var("N"), LinExpr::var("N")]);
/// assert_eq!(a.rank(), 2);
/// assert_eq!(a.to_string(), "A(N, N)");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayDecl {
    name: String,
    dims: Vec<LinExpr>,
}

impl ArrayDecl {
    /// Declare an array.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty.
    pub fn new(name: impl Into<String>, dims: Vec<LinExpr>) -> Self {
        assert!(!dims.is_empty(), "arrays must have at least one dimension");
        Self {
            name: name.into(),
            dims,
        }
    }

    /// A square two-dimensional array `name(n, n)`.
    pub fn square(name: impl Into<String>, n: impl Into<String>) -> Self {
        let e = LinExpr::var(n.into());
        Self::new(name, vec![e.clone(), e])
    }

    /// The array's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Extents per dimension (affine in program parameters).
    pub fn dims(&self) -> &[LinExpr] {
        &self.dims
    }
}

impl fmt::Display for ArrayDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_helper() {
        let a = ArrayDecl::square("C", "N");
        assert_eq!(a.rank(), 2);
        assert_eq!(a.dims()[0], LinExpr::var("N"));
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn zero_rank_rejected() {
        let _ = ArrayDecl::new("A", vec![]);
    }
}
