//! Exact dependence analysis via integer programming.
//!
//! Following the paper (§5: "it is not possible to use dependence
//! abstractions like distance and direction to verify legality. Instead,
//! we solve an integer linear programming problem"), a dependence is not
//! summarized — it is carried around as the exact conjunction of affine
//! constraints describing *all* dependent instance pairs, split into the
//! lexicographic disjuncts of the program order. The legality test in
//! `shackle-core` conjoins each disjunct with "blocks visited in the
//! wrong order" and asks the Omega test for an integer point.
//!
//! Naming convention: the source instance's loop variables are prefixed
//! `s$`, the target's `t$`; program parameters are shared unprefixed.

use crate::schedule::before_disjuncts;
use crate::{ArrayRef, Program, StmtId};
use shackle_polyhedra::{Constraint, System};
use std::fmt;

/// Prefix applied to source-instance iteration variables.
pub const SRC_PREFIX: &str = "s$";
/// Prefix applied to target-instance iteration variables.
pub const TGT_PREFIX: &str = "t$";

/// The classic dependence classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Write then read (true dependence).
    Flow,
    /// Read then write.
    Anti,
    /// Write then write.
    Output,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        };
        write!(f, "{s}")
    }
}

/// A dependence between two statements through one pair of references.
///
/// `systems` holds one integer-feasible constraint system per
/// lexicographic disjunct of "source instance precedes target instance";
/// their union is the exact set of dependent instance pairs, over the
/// variables `s$<loopvar>`, `t$<loopvar>`, and the program parameters.
#[derive(Clone, Debug)]
pub struct Dependence {
    /// Source statement (executes first).
    pub src: StmtId,
    /// Target statement (executes later).
    pub dst: StmtId,
    /// The source reference involved.
    pub src_ref: ArrayRef,
    /// The target reference involved.
    pub dst_ref: ArrayRef,
    /// Flow, anti or output.
    pub kind: DepKind,
    /// Feasible order disjuncts (non-empty).
    pub systems: Vec<System>,
}

impl fmt::Display for Dependence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} dep: S{} {} -> S{} {}",
            self.kind, self.src, self.src_ref, self.dst, self.dst_ref
        )
    }
}

/// A renaming closure that prefixes the given iteration variables and
/// leaves everything else (parameters) alone.
pub fn prefix_renamer<'a>(
    iter_vars: &'a [String],
    prefix: &'a str,
) -> impl Fn(&str) -> Option<String> + 'a {
    move |v: &str| {
        if iter_vars.iter().any(|iv| iv == v) {
            Some(format!("{prefix}{v}"))
        } else {
            None
        }
    }
}

/// Rename a system's iteration variables with a prefix, leaving
/// parameters shared.
fn rename_system(sys: &System, iter_vars: &[String], prefix: &str) -> System {
    let mut s = sys.clone();
    let f = prefix_renamer(iter_vars, prefix);
    s.rename_all(&|v| f(v).unwrap_or_else(|| v.to_string()));
    s
}

/// Compute all dependences of a program.
///
/// Every ordered statement pair `(src, dst)` (including `src == dst`)
/// and every reference pair on a common array with at least one write is
/// tested; each lexicographic order disjunct is kept iff it has an
/// integer solution.
///
/// # Examples
///
/// ```
/// # use shackle_ir::*;
/// # use shackle_polyhedra::LinExpr;
/// // do I = 1..N { A[I] = A[I-1] }  has a loop-carried flow dependence
/// let a = |ix: LinExpr| ArrayRef::new("A", vec![ix]);
/// let s = Statement::new(
///     "S",
///     a(LinExpr::var("I")),
///     ScalarExpr::from(a(LinExpr::var("I") - LinExpr::constant(1))),
/// );
/// let p = Program::new(
///     "shift",
///     vec!["N".into()],
///     vec![ArrayDecl::new("A", vec![LinExpr::var("N")])],
///     vec![s],
///     vec![loop_("I", LinExpr::constant(1), LinExpr::var("N"), vec![stmt(0)])],
/// );
/// let deps = deps::dependences(&p);
/// assert!(deps.iter().any(|d| d.kind == deps::DepKind::Flow));
/// ```
pub fn dependences(p: &Program) -> Vec<Dependence> {
    let mut out = Vec::new();
    let nstmts = p.stmts().len();
    for src in 0..nstmts {
        for dst in 0..nstmts {
            let ctx_s = p.context(src);
            let ctx_t = p.context(dst);
            let vars_s: Vec<String> = ctx_s.iter_vars().iter().map(|s| s.to_string()).collect();
            let vars_t: Vec<String> = ctx_t.iter_vars().iter().map(|s| s.to_string()).collect();
            let dom_s = rename_system(&ctx_s.domain(), &vars_s, SRC_PREFIX);
            let dom_t = rename_system(&ctx_t.domain(), &vars_t, TGT_PREFIX);
            let base = dom_s.and(&dom_t);

            let order = before_disjuncts(
                &ctx_s.schedule,
                &ctx_t.schedule,
                &prefix_renamer(&vars_s, SRC_PREFIX),
                &prefix_renamer(&vars_t, TGT_PREFIX),
            );
            if order.is_empty() {
                continue;
            }

            for (r1, w1) in p.stmts()[src].refs() {
                for (r2, w2) in p.stmts()[dst].refs() {
                    if r1.array() != r2.array() || (!w1 && !w2) {
                        continue;
                    }
                    let kind = match (w1, w2) {
                        (true, true) => DepKind::Output,
                        (true, false) => DepKind::Flow,
                        (false, true) => DepKind::Anti,
                        (false, false) => unreachable!(),
                    };
                    // same element: subscripts equal, in renamed spaces
                    let rs = r1.rename_vars(&prefix_renamer(&vars_s, SRC_PREFIX));
                    let rt = r2.rename_vars(&prefix_renamer(&vars_t, TGT_PREFIX));
                    let mut same = base.clone();
                    for (ia, ib) in rs.indices().iter().zip(rt.indices()) {
                        same.add(Constraint::eq(ia.clone(), ib.clone()));
                    }
                    // Keep every disjunct not *proven* empty: an
                    // undecidable one (budget exhaustion on adversarial
                    // input) is conservatively kept, over-approximating
                    // the dependence relation — legality then rejects
                    // rather than miscompiles.
                    let feasible: Vec<System> = order
                        .iter()
                        .map(|d| same.and(d))
                        .filter(|s| {
                            s.decide(&shackle_polyhedra::Budget::default())
                                != shackle_polyhedra::Verdict::No
                        })
                        .collect();
                    if !feasible.is_empty() {
                        out.push(Dependence {
                            src,
                            dst,
                            src_ref: r1.clone(),
                            dst_ref: r2.clone(),
                            kind,
                            systems: feasible,
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{loop_, stmt, ArrayDecl, ScalarExpr, Statement};
    use shackle_polyhedra::LinExpr;

    fn n() -> LinExpr {
        LinExpr::var("N")
    }

    fn one() -> LinExpr {
        LinExpr::constant(1)
    }

    /// `do I { do J { do K { C[I,J] += A[I,K]*B[K,J] } } }`
    fn matmul() -> Program {
        let c = ArrayRef::vars("C", &["I", "J"]);
        let a = ArrayRef::vars("A", &["I", "K"]);
        let b = ArrayRef::vars("B", &["K", "J"]);
        let s = Statement::new(
            "S1",
            c.clone(),
            ScalarExpr::from(c) + ScalarExpr::from(a) * b.into(),
        );
        Program::new(
            "matmul",
            vec!["N".into()],
            vec![
                ArrayDecl::square("C", "N"),
                ArrayDecl::square("A", "N"),
                ArrayDecl::square("B", "N"),
            ],
            vec![s],
            vec![loop_(
                "I",
                one(),
                n(),
                vec![loop_(
                    "J",
                    one(),
                    n(),
                    vec![loop_("K", one(), n(), vec![stmt(0)])],
                )],
            )],
        )
    }

    #[test]
    fn matmul_reduction_dependences() {
        let deps = dependences(&matmul());
        // C[I,J] is read and written by every K iteration: flow, anti
        // and output dependences carried by K. A and B are read-only.
        assert!(deps.iter().all(|d| d.src_ref.array() == "C"));
        let kinds: Vec<DepKind> = deps.iter().map(|d| d.kind).collect();
        assert!(kinds.contains(&DepKind::Flow));
        assert!(kinds.contains(&DepKind::Anti));
        assert!(kinds.contains(&DepKind::Output));
    }

    #[test]
    fn stride_one_recurrence() {
        // A[I] = A[I-1]: flow from iteration I to I+1 (as source write,
        // target read) — detectable and directionally correct.
        let a = |ix: LinExpr| ArrayRef::new("A", vec![ix]);
        let s = Statement::new(
            "S",
            a(LinExpr::var("I")),
            ScalarExpr::from(a(LinExpr::var("I") - one())),
        );
        let p = Program::new(
            "shift",
            vec!["N".into()],
            vec![ArrayDecl::new("A", vec![n()])],
            vec![s],
            vec![loop_("I", one(), n(), vec![stmt(0)])],
        );
        let deps = dependences(&p);
        let flow: Vec<&Dependence> = deps.iter().filter(|d| d.kind == DepKind::Flow).collect();
        assert_eq!(flow.len(), 1);
        // the dependence system should admit (s$I, t$I) = (1, 2) but not
        // (2, 1)
        let sys = &flow[0].systems[0];
        assert!(sys.eval(&|v| match v {
            "s$I" => 1,
            "t$I" => 2,
            "N" => 10,
            _ => 0,
        }));
        assert!(!sys.eval(&|v| match v {
            "s$I" => 2,
            "t$I" => 1,
            "N" => 10,
            _ => 0,
        }));
        // anti dependence of A[I-1] read before A[I] write... distance 1
        // the other way is impossible (read at I-1 happens before write
        // at I only if targeting same element: t$I - 1 = s$I fails order)
        assert!(deps
            .iter()
            .filter(|d| d.kind == DepKind::Anti)
            .all(|d| d.systems.iter().all(|s| s.is_integer_feasible())));
    }

    #[test]
    fn independent_statements_have_no_dependence() {
        // A[I] = 0 and B[I] = 1 touch different arrays
        let a = ArrayRef::vars("A", &["I"]);
        let b = ArrayRef::vars("B", &["I"]);
        let s1 = Statement::new("S1", a, ScalarExpr::Const(0.0));
        let s2 = Statement::new("S2", b, ScalarExpr::Const(1.0));
        let p = Program::new(
            "indep",
            vec!["N".into()],
            vec![
                ArrayDecl::new("A", vec![n()]),
                ArrayDecl::new("B", vec![n()]),
            ],
            vec![s1, s2],
            vec![loop_("I", one(), n(), vec![stmt(0), stmt(1)])],
        );
        assert!(dependences(&p).is_empty());
    }

    #[test]
    fn cholesky_s1_s2_flow() {
        // the paper's §5.1 example: flow from S1's write of A[J,J] to
        // S2's read of A[J,J]
        let p = crate::kernels::cholesky_right();
        let deps = dependences(&p);
        let d = deps
            .iter()
            .find(|d| {
                d.src == 0
                    && d.dst == 1
                    && d.kind == DepKind::Flow
                    && d.dst_ref.to_string() == "A[J, J]"
            })
            .expect("S1 -> S2 flow dependence on A[J,J] must exist");
        // same J, source before target
        assert!(d.systems.iter().any(|s| s.eval(&|v| match v {
            "s$J" => 2,
            "t$J" => 2,
            "t$I" => 3,
            "N" => 5,
            _ => 0,
        })));
    }
}
