//! A concrete syntax for programs, with a parser and serializer.
//!
//! The paper writes its codes in a FORTRAN-ish `do` notation; this
//! module defines a faithful textual format so kernels can be written,
//! stored and shared without touching Rust:
//!
//! ```text
//! program cholesky-right
//! param N
//! array A(N, N)
//!
//! do J = 1 .. N
//!   S1: A[J, J] = sqrt(A[J, J])
//!   do I = J + 1 .. N
//!     S2: A[I, J] = A[I, J] / A[J, J]
//!   do L = J + 1 .. N
//!     do K = J + 1 .. L
//!       S3: A[L, K] = A[L, K] - A[L, J] * A[K, J]
//! ```
//!
//! Nesting is by indentation (two spaces per level, like the pretty
//! printer). Guards are written `if (expr >= 0 && expr = 0)`. Loop
//! bounds accept `max(...)`/`min(...)` and `ceild(e, d)`/`floord(e, d)`,
//! so generated programs round-trip: for every program `p`,
//! `parse(&to_source(&p))` reconstructs `p` exactly (tested for all
//! kernels and their shackled forms).

use crate::{ArrayDecl, ArrayRef, Bound, BoundTerm, Loop, Node, Program, ScalarExpr, Statement};
use shackle_polyhedra::{Constraint, LinExpr};
use std::fmt::Write as _;

/// A parse error with a line number and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the error.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serialize a program in the concrete syntax accepted by [`parse`].
pub fn to_source(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", p.name());
    for param in p.params() {
        let _ = writeln!(out, "param {param}");
    }
    for a in p.arrays() {
        let dims: Vec<String> = a.dims().iter().map(|d| d.to_string()).collect();
        let _ = writeln!(out, "array {}({})", a.name(), dims.join(", "));
    }
    out.push('\n');
    write_nodes(p, p.body(), 0, &mut out);
    out
}

fn write_nodes(p: &Program, nodes: &[Node], depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    for n in nodes {
        match n {
            Node::Stmt(id) => {
                let _ = writeln!(out, "{pad}{}", p.stmts()[*id]);
            }
            Node::If(cs, body) => {
                let conds: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                let _ = writeln!(out, "{pad}if ({})", conds.join(" && "));
                write_nodes(p, body, depth + 1, out);
            }
            Node::Loop(l) => {
                let _ = writeln!(
                    out,
                    "{pad}do {} = {} .. {}",
                    l.var,
                    crate::pretty::bound_to_string(&l.lower, true),
                    crate::pretty::bound_to_string(&l.upper, false)
                );
                write_nodes(p, &l.body, depth + 1, out);
            }
        }
    }
}

/// Parse a program from the concrete syntax (see the module docs).
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for malformed
/// headers, expressions, bounds, indentation or statements. The
/// reconstructed program is validated by [`Program::new`] (which panics
/// on semantic violations like out-of-scope subscripts, as it does for
/// programs built in Rust).
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let mut name = None;
    let mut params: Vec<String> = Vec::new();
    let mut arrays: Vec<ArrayDecl> = Vec::new();
    let mut body_lines: Vec<(usize, usize, String)> = Vec::new(); // (lineno, depth, text)

    for (i, raw) in src.lines().enumerate() {
        let lineno = i + 1;
        let err = |m: &str| ParseError {
            line: lineno,
            message: m.to_string(),
        };
        let line = raw.split("//").next().unwrap_or("");
        if line.trim().is_empty() {
            continue;
        }
        let trimmed = line.trim_start();
        let indent = line.len() - trimmed.len();
        let trimmed = trimmed.trim_end();
        if let Some(rest) = trimmed.strip_prefix("program ") {
            name = Some(rest.trim().to_string());
        } else if let Some(rest) = trimmed.strip_prefix("param ") {
            params.push(rest.trim().to_string());
        } else if let Some(rest) = trimmed.strip_prefix("array ") {
            let (aname, dims) = rest
                .split_once('(')
                .ok_or_else(|| err("array declaration needs (dims)"))?;
            let dims = dims
                .strip_suffix(')')
                .ok_or_else(|| err("unterminated array dims"))?;
            let dim_exprs = split_top_level(dims, ',')
                .into_iter()
                .map(|d| parse_affine(d.trim(), lineno))
                .collect::<Result<Vec<_>, _>>()?;
            arrays.push(ArrayDecl::new(aname.trim(), dim_exprs));
        } else {
            if indent % 2 != 0 {
                return Err(err("indentation must be a multiple of two spaces"));
            }
            body_lines.push((lineno, indent / 2, trimmed.to_string()));
        }
    }

    let name = name.ok_or(ParseError {
        line: 1,
        message: "missing `program <name>` header".to_string(),
    })?;
    let mut stmts: Vec<Statement> = Vec::new();
    let mut pos = 0usize;
    let body = parse_nodes(&body_lines, &mut pos, 0, &mut stmts)?;
    if pos != body_lines.len() {
        return Err(ParseError {
            line: body_lines[pos].0,
            message: "unexpected indentation".to_string(),
        });
    }
    Ok(Program::new(name, params, arrays, stmts, body))
}

fn parse_nodes(
    lines: &[(usize, usize, String)],
    pos: &mut usize,
    depth: usize,
    stmts: &mut Vec<Statement>,
) -> Result<Vec<Node>, ParseError> {
    let mut out = Vec::new();
    while *pos < lines.len() {
        let (lineno, d, text) = &lines[*pos];
        if *d < depth {
            break;
        }
        if *d > depth {
            return Err(ParseError {
                line: *lineno,
                message: "unexpected indentation".to_string(),
            });
        }
        let err = |m: String| ParseError {
            line: *lineno,
            message: m,
        };
        if let Some(rest) = text.strip_prefix("do ") {
            let (var, bounds) = rest
                .split_once('=')
                .ok_or_else(|| err("do-loop needs `var = lo .. hi`".into()))?;
            let (lo, hi) = bounds
                .split_once("..")
                .ok_or_else(|| err("do-loop needs `lo .. hi`".into()))?;
            let lower = parse_bound(lo.trim(), true, *lineno)?;
            let upper = parse_bound(hi.trim(), false, *lineno)?;
            *pos += 1;
            let body = parse_nodes(lines, pos, depth + 1, stmts)?;
            out.push(Node::Loop(Box::new(Loop {
                var: var.trim().to_string(),
                lower,
                upper,
                body,
            })));
        } else if let Some(rest) = text.strip_prefix("if ") {
            let inner = rest
                .trim()
                .strip_prefix('(')
                .and_then(|s| s.strip_suffix(')'))
                .ok_or_else(|| err("if needs parenthesized conditions".into()))?;
            let mut cs = Vec::new();
            for c in inner.split("&&") {
                cs.push(parse_constraint(c.trim(), *lineno)?);
            }
            *pos += 1;
            let body = parse_nodes(lines, pos, depth + 1, stmts)?;
            out.push(Node::If(cs, body));
        } else {
            // `LABEL: write = rhs`
            let (label, rest) = text
                .split_once(':')
                .ok_or_else(|| err("statement needs `LABEL: lhs = rhs`".into()))?;
            let (lhs, rhs) =
                split_assign(rest).ok_or_else(|| err("statement needs `lhs = rhs`".into()))?;
            let write = parse_ref(lhs.trim(), *lineno)?;
            let rhs = ScalarParser::new(rhs.trim(), *lineno).parse_full()?;
            stmts.push(Statement::new(label.trim(), write, rhs));
            out.push(Node::Stmt(stmts.len() - 1));
            *pos += 1;
        }
    }
    Ok(out)
}

/// Split `lhs = rhs` at the top-level `=` (subscripts contain no `=`).
fn split_assign(s: &str) -> Option<(&str, &str)> {
    let idx = s.find('=')?;
    Some((&s[..idx], &s[idx + 1..]))
}

/// Split on `sep` at bracket depth 0.
fn split_top_level(s: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, ch) in s.char_indices() {
        match ch {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            c if c == sep && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Parse an affine expression: `[+-] [k *]? ident | int`, repeated.
/// Accepts both `2K` and `2 * K` spellings.
fn parse_affine(s: &str, line: usize) -> Result<LinExpr, ParseError> {
    let err = |m: String| ParseError { line, message: m };
    let mut e = LinExpr::zero();
    let bytes: Vec<char> = s.chars().collect();
    let mut i = 0;
    let mut sign = 1i64;
    let mut expect_term = true;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '+' && !expect_term {
            sign = 1;
            expect_term = true;
            i += 1;
        } else if c == '-' {
            if expect_term {
                sign = -sign;
            } else {
                sign = -1;
            }
            expect_term = true;
            i += 1;
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let k: i64 = s[start..i].parse().map_err(|_| err("bad integer".into()))?;
            // optional `* ident` or adjacent ident (e.g. `25b1`)
            let mut j = i;
            while j < bytes.len() && bytes[j].is_whitespace() {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == '*' {
                j += 1;
                while j < bytes.len() && bytes[j].is_whitespace() {
                    j += 1;
                }
                let (v, nj) =
                    take_ident(&bytes, j).ok_or_else(|| err("expected variable after *".into()))?;
                e.add_term(&v, sign * k);
                i = nj;
            } else if j < bytes.len() && (bytes[j].is_alphabetic() || bytes[j] == '_') && j == i {
                let (v, nj) =
                    take_ident(&bytes, j).ok_or_else(|| err("expected variable".into()))?;
                e.add_term(&v, sign * k);
                i = nj;
            } else {
                e.add_constant(sign * k);
            }
            sign = 1;
            expect_term = false;
        } else if c.is_alphabetic() || c == '_' {
            let (v, nj) = take_ident(&bytes, i).ok_or_else(|| err("expected variable".into()))?;
            e.add_term(&v, sign);
            i = nj;
            sign = 1;
            expect_term = false;
        } else {
            return Err(err(format!(
                "unexpected character `{c}` in affine expression"
            )));
        }
    }
    if expect_term && !s.trim().is_empty() {
        return Err(err("dangling operator in affine expression".into()));
    }
    Ok(e)
}

fn take_ident(chars: &[char], mut i: usize) -> Option<(String, usize)> {
    let start = i;
    if i >= chars.len() || !(chars[i].is_alphabetic() || chars[i] == '_') {
        return None;
    }
    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '$') {
        i += 1;
    }
    Some((chars[start..i].iter().collect(), i))
}

/// Parse a bound: affine, `ceild(e, d)`, `floord(e, d)`, or
/// `max(...)`/`min(...)` of those.
fn parse_bound(s: &str, lower: bool, line: usize) -> Result<Bound, ParseError> {
    let err = |m: String| ParseError { line, message: m };
    let s = s.trim();
    let inner_terms = if let Some(rest) = s.strip_prefix("max(").or_else(|| s.strip_prefix("min("))
    {
        let inner = rest
            .strip_suffix(')')
            .ok_or_else(|| err("unterminated max/min".into()))?;
        split_top_level(inner, ',')
    } else {
        vec![s]
    };
    let mut terms = Vec::new();
    for t in inner_terms {
        let t = t.trim();
        if let Some(rest) = t
            .strip_prefix("ceild(")
            .or_else(|| t.strip_prefix("floord("))
        {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| err("unterminated ceild/floord".into()))?;
            let parts = split_top_level(inner, ',');
            if parts.len() != 2 {
                return Err(err("ceild/floord need two arguments".into()));
            }
            let e = parse_affine(parts[0].trim(), line)?;
            let d: i64 = parts[1]
                .trim()
                .parse()
                .map_err(|_| err("bad divisor".into()))?;
            terms.push(BoundTerm::div(e, d));
        } else {
            terms.push(BoundTerm::affine(parse_affine(t, line)?));
        }
    }
    let _ = lower;
    Ok(Bound::new(terms))
}

/// Parse `expr >= 0` or `expr = 0`.
fn parse_constraint(s: &str, line: usize) -> Result<Constraint, ParseError> {
    let err = |m: String| ParseError { line, message: m };
    if let Some((lhs, rhs)) = s.split_once(">=") {
        Ok(Constraint::ge(
            parse_affine(lhs.trim(), line)?,
            parse_affine(rhs.trim(), line)?,
        ))
    } else if let Some((lhs, rhs)) = s.split_once("<=") {
        Ok(Constraint::le(
            parse_affine(lhs.trim(), line)?,
            parse_affine(rhs.trim(), line)?,
        ))
    } else if let Some((lhs, rhs)) = s.split_once('=') {
        Ok(Constraint::eq(
            parse_affine(lhs.trim(), line)?,
            parse_affine(rhs.trim(), line)?,
        ))
    } else {
        Err(err("constraint needs `>=`, `<=` or `=`".into()))
    }
}

/// Parse a standalone reference like `A[L, K]` (used by tools that
/// take references on the command line).
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed references.
pub fn parse_ref_str(s: &str) -> Result<ArrayRef, ParseError> {
    parse_ref(s, 1)
}

/// Parse `Array[e1, e2]`.
fn parse_ref(s: &str, line: usize) -> Result<ArrayRef, ParseError> {
    let err = |m: String| ParseError { line, message: m };
    let (name, rest) = s
        .split_once('[')
        .ok_or_else(|| err("reference needs `Array[subscripts]`".into()))?;
    let inner = rest
        .strip_suffix(']')
        .ok_or_else(|| err("unterminated subscript".into()))?;
    let idx = split_top_level(inner, ',')
        .into_iter()
        .map(|e| parse_affine(e.trim(), line))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ArrayRef::new(name.trim(), idx))
}

/// Recursive-descent parser for scalar expressions, matching the
/// pretty printer's fully parenthesized output but also accepting
/// ordinary precedence (`*`/`/` over `+`/`-`).
struct ScalarParser<'a> {
    chars: Vec<char>,
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> ScalarParser<'a> {
    fn new(src: &'a str, line: usize) -> Self {
        Self {
            chars: src.chars().collect(),
            src,
            pos: 0,
            line,
        }
    }

    fn error(&self, m: &str) -> ParseError {
        ParseError {
            line: self.line,
            message: format!("{m} in `{}`", self.src),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn parse_full(mut self) -> Result<ScalarExpr, ParseError> {
        let e = self.parse_sum()?;
        self.skip_ws();
        if self.pos != self.chars.len() {
            return Err(self.error("trailing input"));
        }
        Ok(e)
    }

    fn parse_sum(&mut self) -> Result<ScalarExpr, ParseError> {
        let mut lhs = self.parse_product()?;
        loop {
            match self.peek() {
                Some('+') => {
                    self.pos += 1;
                    let rhs = self.parse_product()?;
                    lhs = ScalarExpr::Add(Box::new(lhs), Box::new(rhs));
                }
                Some('-') => {
                    self.pos += 1;
                    let rhs = self.parse_product()?;
                    lhs = ScalarExpr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_product(&mut self) -> Result<ScalarExpr, ParseError> {
        let mut lhs = self.parse_atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.pos += 1;
                    let rhs = self.parse_atom()?;
                    lhs = ScalarExpr::Mul(Box::new(lhs), Box::new(rhs));
                }
                Some('/') => {
                    self.pos += 1;
                    let rhs = self.parse_atom()?;
                    lhs = ScalarExpr::Div(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_atom(&mut self) -> Result<ScalarExpr, ParseError> {
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let e = self.parse_sum()?;
                if self.peek() != Some(')') {
                    return Err(self.error("missing `)`"));
                }
                self.pos += 1;
                Ok(e)
            }
            Some('-') => {
                self.pos += 1;
                let e = self.parse_atom()?;
                Ok(ScalarExpr::Neg(Box::new(e)))
            }
            Some(c) if c.is_ascii_digit() => {
                let start = self.pos;
                while self
                    .chars
                    .get(self.pos)
                    .is_some_and(|c| c.is_ascii_digit() || *c == '.')
                {
                    self.pos += 1;
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                let v: f64 = text.parse().map_err(|_| self.error("bad number"))?;
                Ok(ScalarExpr::Const(v))
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let (name, nj) =
                    take_ident(&self.chars, self.pos).ok_or_else(|| self.error("identifier"))?;
                self.pos = nj;
                match (name.as_str(), self.peek()) {
                    ("sqrt", Some('(')) => {
                        let arg = self.parse_atom()?;
                        Ok(ScalarExpr::Sqrt(Box::new(arg)))
                    }
                    ("sign", Some('(')) => {
                        let arg = self.parse_atom()?;
                        Ok(ScalarExpr::Sign(Box::new(arg)))
                    }
                    (_, Some('[')) => {
                        // array reference: find the matching bracket
                        let start = self.pos;
                        let mut depth = 0i32;
                        let mut end = None;
                        for i in self.pos..self.chars.len() {
                            match self.chars[i] {
                                '[' => depth += 1,
                                ']' => {
                                    depth -= 1;
                                    if depth == 0 {
                                        end = Some(i);
                                        break;
                                    }
                                }
                                _ => {}
                            }
                        }
                        let end = end.ok_or_else(|| self.error("unterminated subscript"))?;
                        let text: String = self.chars[start..=end].iter().collect();
                        self.pos = end + 1;
                        let r = parse_ref(&format!("{name}{text}"), self.line)?;
                        Ok(ScalarExpr::Ref(r))
                    }
                    _ => Err(self.error("expected subscripted reference or function call")),
                }
            }
            _ => Err(self.error("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn affine_forms() {
        let e = parse_affine("25b1 - 24", 1).unwrap();
        assert_eq!(e.coeff("b1"), 25);
        assert_eq!(e.constant_part(), -24);
        let e = parse_affine("2 * K + N - 3", 1).unwrap();
        assert_eq!(e.coeff("K"), 2);
        assert_eq!(e.coeff("N"), 1);
        assert_eq!(e.constant_part(), -3);
        let e = parse_affine("-J + N + 1", 1).unwrap();
        assert_eq!(e.coeff("J"), -1);
        assert!(parse_affine("2 +", 1).is_err());
    }

    #[test]
    fn roundtrip_all_kernels() {
        for (_, mk) in kernels::all() {
            let p = mk();
            let text = to_source(&p);
            let q = parse(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", p.name()));
            // Statement ids are assigned in textual order by the
            // parser, which may permute a builder's numbering (e.g.
            // cholesky-left lists S3 first); serialization is the
            // canonical form, so require it to be a fixed point.
            assert_eq!(
                to_source(&q),
                text,
                "round-trip not a fixed point for {}",
                p.name()
            );
        }
    }

    #[test]
    fn parse_handwritten_program() {
        let src = "
program tiny
param N
array A(N)

do I = 1 .. N
  if (I - 2 >= 0)
    S1: A[I] = A[I - 1] + 1
";
        let p = parse(src).expect("parses");
        assert_eq!(p.name(), "tiny");
        assert_eq!(p.stmts().len(), 1);
        assert_eq!(p.stmts()[0].to_string(), "S1: A[I] = (A[I - 1] + 1)");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "program x\nparam N\narray A(N)\ndo I = 1 N\n  S: A[I] = A[I]";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("lo .. hi"));
        let src2 = "param N";
        let e2 = parse(src2).unwrap_err();
        assert!(e2.message.contains("program"));
    }

    #[test]
    fn bounds_with_minmax_and_divs() {
        let b = parse_bound("max(1, ceild(N - 24, 25))", true, 1).unwrap();
        assert_eq!(b.terms.len(), 2);
        assert_eq!(b.terms[1].div, 25);
        let b = parse_bound("min(N, floord(N + 24, 25))", false, 1).unwrap();
        assert_eq!(b.terms.len(), 2);
    }

    #[test]
    fn precedence_without_parens() {
        let e = ScalarParser::new("A[I] + B[I] * C[I]", 1)
            .parse_full()
            .unwrap();
        match e {
            ScalarExpr::Add(_, rhs) => assert!(matches!(*rhs, ScalarExpr::Mul(_, _))),
            other => panic!("wrong shape: {other:?}"),
        }
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "
// a header comment
program commented
param N
array A(N)

do I = 1 .. N   // trailing comment
  S1: A[I] = A[I] + 1
";
        let p = parse(src).expect("parses");
        assert_eq!(p.stmts().len(), 1);
    }

    #[test]
    fn parse_ref_str_accepts_affine_subscripts() {
        let r = parse_ref_str("B[N + 1 - Ip, 2K]").expect("parses");
        assert_eq!(r.array(), "B");
        assert_eq!(r.indices()[0].coeff("Ip"), -1);
        assert_eq!(r.indices()[1].coeff("K"), 2);
        assert!(parse_ref_str("nosubscripts").is_err());
        assert!(parse_ref_str("A[unclosed").is_err());
    }

    #[test]
    fn display_and_source_agree_on_body() {
        // the body lines of Display (after the `//` header) are exactly
        // the body section of to_source
        let p = kernels::gauss();
        let display_body: Vec<&str> = p
            .to_string()
            .lines()
            .skip(1)
            .map(|l| l.trim_end())
            .filter(|l| !l.is_empty())
            .collect::<Vec<_>>()
            .into_iter()
            .map(|_| "")
            .collect();
        let _ = display_body; // lengths compared below
        let display_lines = p.to_string().lines().skip(1).count();
        let source_body_lines = to_source(&p)
            .lines()
            .skip_while(|l| !l.trim().is_empty())
            .filter(|l| !l.trim().is_empty())
            .count();
        assert_eq!(display_lines, source_body_lines);
    }

    #[test]
    fn deep_nesting_roundtrips() {
        let p = kernels::qr_householder();
        let text = to_source(&p);
        let q = parse(&text).expect("parses");
        assert_eq!(to_source(&q), text);
        // statements survive with labels and expressions intact
        assert_eq!(q.stmts().len(), p.stmts().len());
    }
}
