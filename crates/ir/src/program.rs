//! Programs: imperfectly nested loop trees over statements.

use crate::schedule::SchedElem;
use crate::{ArrayDecl, Statement};
use shackle_polyhedra::{Constraint, LinExpr, System};
use std::collections::BTreeSet;
use std::fmt;

/// Identifies a statement within its [`Program`].
pub type StmtId = usize;

/// One alternative in a loop bound: `ceil(expr / div)` for lower bounds,
/// `floor(expr / div)` for upper bounds. `div` is 1 for ordinary affine
/// bounds; block-coordinate loops produced by shackling use larger
/// divisors (e.g. `t1 = 1 .. ceil(N / 25)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundTerm {
    /// The affine numerator.
    pub expr: LinExpr,
    /// The positive divisor.
    pub div: i64,
}

impl BoundTerm {
    /// A plain affine bound (`div == 1`).
    pub fn affine(expr: LinExpr) -> Self {
        Self { expr, div: 1 }
    }

    /// A divided bound.
    ///
    /// # Panics
    ///
    /// Panics unless `div >= 1`.
    pub fn div(expr: LinExpr, div: i64) -> Self {
        assert!(div >= 1, "bound divisor must be positive");
        Self { expr, div }
    }
}

/// A loop bound: the max (for lower bounds) or min (for upper bounds) of
/// its terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bound {
    /// The alternatives; must be non-empty.
    pub terms: Vec<BoundTerm>,
}

impl Bound {
    /// A single affine bound.
    pub fn affine(expr: LinExpr) -> Self {
        Self {
            terms: vec![BoundTerm::affine(expr)],
        }
    }

    /// A constant bound.
    pub fn constant(c: i64) -> Self {
        Self::affine(LinExpr::constant(c))
    }

    /// A bound from several terms.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty.
    pub fn new(terms: Vec<BoundTerm>) -> Self {
        assert!(!terms.is_empty(), "bounds need at least one term");
        Self { terms }
    }

    /// Variables mentioned by any term.
    pub fn vars(&self) -> BTreeSet<String> {
        self.terms
            .iter()
            .flat_map(|t| t.expr.vars().map(str::to_string))
            .collect()
    }

    /// Constraints stating `var >= self` (when `lower`) or `var <= self`
    /// (otherwise), exact over the integers: `v >= ceil(e/d)` iff
    /// `d·v >= e`.
    pub fn constraints(&self, var: &str, lower: bool) -> Vec<Constraint> {
        self.terms
            .iter()
            .map(|t| {
                let v = LinExpr::term(var, t.div);
                if lower {
                    Constraint::ge(v, t.expr.clone())
                } else {
                    Constraint::le(v, t.expr.clone())
                }
            })
            .collect()
    }
}

/// A `do` loop with inclusive bounds and unit step.
#[derive(Clone, Debug, PartialEq)]
pub struct Loop {
    /// The loop variable name.
    pub var: String,
    /// Lower bound (max of terms).
    pub lower: Bound,
    /// Upper bound (min of terms).
    pub upper: Bound,
    /// Loop body.
    pub body: Vec<Node>,
}

/// A node of the loop tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Node {
    /// A loop.
    Loop(Box<Loop>),
    /// A guarded region: the body executes when every constraint holds.
    If(Vec<Constraint>, Vec<Node>),
    /// A statement occurrence.
    Stmt(StmtId),
}

/// Build a loop node with simple affine bounds.
pub fn loop_(var: impl Into<String>, lower: LinExpr, upper: LinExpr, body: Vec<Node>) -> Node {
    Node::Loop(Box::new(Loop {
        var: var.into(),
        lower: Bound::affine(lower),
        upper: Bound::affine(upper),
        body,
    }))
}

/// Build a loop node with general bounds.
pub fn loop_b(var: impl Into<String>, lower: Bound, upper: Bound, body: Vec<Node>) -> Node {
    Node::Loop(Box::new(Loop {
        var: var.into(),
        lower,
        upper,
        body,
    }))
}

/// Build a statement occurrence node.
pub fn stmt(id: StmtId) -> Node {
    Node::Stmt(id)
}

/// Build a guard node.
pub fn if_(constraints: Vec<Constraint>, body: Vec<Node>) -> Node {
    Node::If(constraints, body)
}

/// The static context of a statement occurrence: its surrounding loops
/// (outermost first), guards, and `2d+1` schedule vector.
#[derive(Clone, Debug)]
pub struct StmtContext {
    /// Surrounding loop descriptions, outermost first.
    pub loops: Vec<Loop>,
    /// Guards from surrounding `If` nodes.
    pub guards: Vec<Constraint>,
    /// The `2d+1` schedule: alternating textual positions and loop
    /// variables, ending with a textual position.
    pub schedule: Vec<SchedElem>,
}

impl StmtContext {
    /// The surrounding loop variables, outermost first.
    pub fn iter_vars(&self) -> Vec<&str> {
        self.loops.iter().map(|l| l.var.as_str()).collect()
    }

    /// The iteration domain as a constraint system over the loop
    /// variables and program parameters.
    pub fn domain(&self) -> System {
        let mut sys = System::new();
        for l in &self.loops {
            sys.add_all(l.lower.constraints(&l.var, true));
            sys.add_all(l.upper.constraints(&l.var, false));
        }
        sys.add_all(self.guards.iter().cloned());
        sys
    }
}

/// A complete program: parameters, arrays, statements and a loop tree.
///
/// Invariants enforced at construction: every `Stmt` node refers to a
/// valid statement, every statement appears exactly once in the tree,
/// subscript counts match array ranks, and every variable used in a
/// subscript or bound is a surrounding loop variable or a parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    name: String,
    params: Vec<String>,
    arrays: Vec<ArrayDecl>,
    stmts: Vec<Statement>,
    body: Vec<Node>,
}

impl Program {
    /// Construct and validate a program.
    ///
    /// # Panics
    ///
    /// Panics (with a descriptive message) if any structural invariant is
    /// violated — programs are built by code, not parsed from input, so
    /// violations are construction bugs.
    pub fn new(
        name: impl Into<String>,
        params: Vec<String>,
        arrays: Vec<ArrayDecl>,
        stmts: Vec<Statement>,
        body: Vec<Node>,
    ) -> Self {
        let p = Self {
            name: name.into(),
            params,
            arrays,
            stmts,
            body,
        };
        p.validate();
        p
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Symbolic parameters (e.g. `N`).
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Look up an array by name.
    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name() == name)
    }

    /// The statements (indexed by [`StmtId`]).
    pub fn stmts(&self) -> &[Statement] {
        &self.stmts
    }

    /// The loop tree.
    pub fn body(&self) -> &[Node] {
        &self.body
    }

    /// Replace the loop tree (used by code generation), revalidating.
    pub fn with_body(&self, body: Vec<Node>) -> Program {
        Program::new(
            self.name.clone(),
            self.params.clone(),
            self.arrays.clone(),
            self.stmts.clone(),
            body,
        )
    }

    /// Rename the program.
    pub fn with_name(mut self, name: impl Into<String>) -> Program {
        self.name = name.into();
        self
    }

    /// The static context (loops, guards, schedule) of a statement's
    /// unique occurrence.
    ///
    /// # Panics
    ///
    /// Panics if the statement does not occur in the tree.
    pub fn context(&self, id: StmtId) -> StmtContext {
        fn walk(
            nodes: &[Node],
            id: StmtId,
            loops: &mut Vec<Loop>,
            guards: &mut Vec<Constraint>,
            sched: &mut Vec<SchedElem>,
        ) -> Option<StmtContext> {
            for (pos, n) in nodes.iter().enumerate() {
                match n {
                    Node::Stmt(s) if *s == id => {
                        let mut schedule = sched.clone();
                        schedule.push(SchedElem::Text(pos));
                        return Some(StmtContext {
                            loops: loops.clone(),
                            guards: guards.clone(),
                            schedule,
                        });
                    }
                    Node::Stmt(_) => {}
                    Node::Loop(l) => {
                        loops.push((**l).clone());
                        sched.push(SchedElem::Text(pos));
                        sched.push(SchedElem::Var(l.var.clone()));
                        if let Some(c) = walk(&l.body, id, loops, guards, sched) {
                            return Some(c);
                        }
                        sched.pop();
                        sched.pop();
                        loops.pop();
                    }
                    Node::If(cs, body) => {
                        // Guards are transparent to the schedule: the
                        // textual position of children is the If's own
                        // position plus a sub-position. We fold the If
                        // into the schedule as a Text level to keep
                        // positions unambiguous.
                        guards.extend(cs.iter().cloned());
                        sched.push(SchedElem::Text(pos));
                        if let Some(c) = walk(body, id, loops, guards, sched) {
                            return Some(c);
                        }
                        sched.pop();
                        for _ in cs {
                            guards.pop();
                        }
                    }
                }
            }
            None
        }
        walk(
            &self.body,
            id,
            &mut Vec::new(),
            &mut Vec::new(),
            &mut Vec::new(),
        )
        .unwrap_or_else(|| panic!("statement {id} does not occur in program {}", self.name))
    }

    /// Statement ids in textual (program) order.
    pub fn stmt_order(&self) -> Vec<StmtId> {
        fn walk(nodes: &[Node], out: &mut Vec<StmtId>) {
            for n in nodes {
                match n {
                    Node::Stmt(s) => out.push(*s),
                    Node::Loop(l) => walk(&l.body, out),
                    Node::If(_, b) => walk(b, out),
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }

    fn validate(&self) {
        // every statement occurs exactly once
        let order = self.stmt_order();
        for id in 0..self.stmts.len() {
            let count = order.iter().filter(|&&s| s == id).count();
            assert_eq!(
                count,
                1,
                "statement {id} ({}) must occur exactly once, found {count}",
                self.stmts.get(id).map(|s| s.label()).unwrap_or("?")
            );
        }
        for &id in &order {
            assert!(
                id < self.stmts.len(),
                "node references unknown statement {id}"
            );
        }
        // scoping and arity
        for id in 0..self.stmts.len() {
            let ctx = self.context(id);
            let mut in_scope: BTreeSet<&str> = self.params.iter().map(String::as_str).collect();
            for (li, l) in ctx.loops.iter().enumerate() {
                for b in [&l.lower, &l.upper] {
                    for v in b.vars() {
                        assert!(
                            in_scope.contains(v.as_str()),
                            "bound of loop {} in {} uses out-of-scope variable {v}",
                            l.var,
                            self.stmts[id].label()
                        );
                    }
                }
                let _ = li;
                in_scope.insert(l.var.as_str());
            }
            for (r, _) in self.stmts[id].refs() {
                let decl = self
                    .array(r.array())
                    .unwrap_or_else(|| panic!("undeclared array {}", r.array()));
                assert_eq!(
                    r.indices().len(),
                    decl.rank(),
                    "reference {r} does not match rank of {decl}"
                );
                for ix in r.indices() {
                    for v in ix.vars() {
                        assert!(
                            in_scope.contains(v),
                            "subscript of {r} uses out-of-scope variable {v}"
                        );
                    }
                }
            }
            for g in &ctx.guards {
                for v in g.expr().vars() {
                    assert!(
                        in_scope.contains(v),
                        "guard {g} uses out-of-scope variable {v} in {}",
                        self.stmts[id].label()
                    );
                }
            }
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::pretty::print_program(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrayRef, ScalarExpr};

    fn n() -> LinExpr {
        LinExpr::var("N")
    }

    fn one() -> LinExpr {
        LinExpr::constant(1)
    }

    /// The paper's Figure 1(i): matrix multiplication, I-J-K order.
    fn matmul() -> Program {
        let c = ArrayRef::vars("C", &["I", "J"]);
        let a = ArrayRef::vars("A", &["I", "K"]);
        let b = ArrayRef::vars("B", &["K", "J"]);
        let s = Statement::new(
            "S1",
            c.clone(),
            ScalarExpr::from(c) + ScalarExpr::from(a) * b.into(),
        );
        Program::new(
            "matmul",
            vec!["N".into()],
            vec![
                ArrayDecl::square("C", "N"),
                ArrayDecl::square("A", "N"),
                ArrayDecl::square("B", "N"),
            ],
            vec![s],
            vec![loop_(
                "I",
                one(),
                n(),
                vec![loop_(
                    "J",
                    one(),
                    n(),
                    vec![loop_("K", one(), n(), vec![stmt(0)])],
                )],
            )],
        )
    }

    #[test]
    fn context_of_matmul() {
        let p = matmul();
        let ctx = p.context(0);
        assert_eq!(ctx.iter_vars(), vec!["I", "J", "K"]);
        assert_eq!(ctx.schedule.len(), 7); // T V T V T V T
        let dom = ctx.domain();
        assert!(dom.eval(&|v| match v {
            "N" => 4,
            _ => 2,
        }));
        assert!(!dom.eval(&|v| match v {
            "N" => 4,
            "K" => 5,
            _ => 2,
        }));
    }

    #[test]
    fn stmt_order_walks_tree() {
        let p = matmul();
        assert_eq!(p.stmt_order(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "exactly once")]
    fn duplicate_statement_rejected() {
        let c = ArrayRef::vars("C", &["I"]);
        let s = Statement::new("S", c.clone(), ScalarExpr::from(c));
        let _ = Program::new(
            "bad",
            vec!["N".into()],
            vec![ArrayDecl::new("C", vec![n()])],
            vec![s],
            vec![loop_("I", one(), n(), vec![stmt(0), stmt(0)])],
        );
    }

    #[test]
    #[should_panic(expected = "out-of-scope")]
    fn out_of_scope_subscript_rejected() {
        let c = ArrayRef::vars("C", &["Q"]);
        let s = Statement::new("S", c.clone(), ScalarExpr::from(c));
        let _ = Program::new(
            "bad",
            vec!["N".into()],
            vec![ArrayDecl::new("C", vec![n()])],
            vec![s],
            vec![loop_("I", one(), n(), vec![stmt(0)])],
        );
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn rank_mismatch_rejected() {
        let c = ArrayRef::vars("C", &["I", "I"]);
        let s = Statement::new("S", c.clone(), ScalarExpr::from(c));
        let _ = Program::new(
            "bad",
            vec!["N".into()],
            vec![ArrayDecl::new("C", vec![n()])],
            vec![s],
            vec![loop_("I", one(), n(), vec![stmt(0)])],
        );
    }

    #[test]
    fn bound_constraints_are_exact_for_divided_bounds() {
        // t >= ceil(N/25) is 25 t >= N
        let b = Bound::new(vec![BoundTerm::div(LinExpr::var("N"), 25)]);
        let cs = b.constraints("t", true);
        assert_eq!(cs.len(), 1);
        assert!(cs[0].eval(&|v| if v == "t" { 4 } else { 100 }));
        assert!(!cs[0].eval(&|v| if v == "t" { 3 } else { 100 }));
    }

    #[test]
    fn guards_enter_domain() {
        let c = ArrayRef::vars("C", &["I"]);
        let s = Statement::new("S", c.clone(), ScalarExpr::from(c));
        let p = Program::new(
            "guarded",
            vec!["N".into()],
            vec![ArrayDecl::new("C", vec![n()])],
            vec![s],
            vec![loop_(
                "I",
                one(),
                n(),
                vec![if_(
                    vec![Constraint::ge(LinExpr::var("I"), LinExpr::constant(5))],
                    vec![stmt(0)],
                )],
            )],
        );
        let dom = p.context(0).domain();
        assert!(!dom.eval(&|v| if v == "N" { 10 } else { 4 }));
        assert!(dom.eval(&|v| if v == "N" { 10 } else { 5 }));
    }
}
