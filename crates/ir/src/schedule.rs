//! `2d+1` schedules and program-order disjunctions.
//!
//! Imperfectly nested loops are compared by their *schedule vectors*:
//! alternating textual positions (constants) and loop variables. Two
//! statement instances are ordered by the lexicographic comparison of
//! their schedule vectors, which over affine constraints is a
//! disjunction with one conjunct per "first position that differs".

use shackle_polyhedra::{Constraint, LinExpr, System};
use std::fmt;

/// One element of a `2d+1` schedule vector.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SchedElem {
    /// A textual position: the index of a node within its parent's body.
    Text(usize),
    /// A loop variable (dynamic component).
    Var(String),
}

impl fmt::Display for SchedElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedElem::Text(k) => write!(f, "{k}"),
            SchedElem::Var(v) => write!(f, "{v}"),
        }
    }
}

/// Build the disjunction expressing *instance `a` of the statement with
/// schedule `sa` executes before instance `b` of the statement with
/// schedule `sb` in original program order*.
///
/// `rename_a` / `rename_b` map each statement's loop variables into the
/// combined constraint space (e.g. `I ↦ s$I` for the source instance and
/// `I ↦ t$I` for the target); parameters should be mapped to themselves
/// by returning `None` (the identity).
///
/// The two schedules must come from the same program tree, so whenever
/// their textual prefixes agree the loop variables at matching positions
/// denote the same loop.
///
/// # Examples
///
/// Within a single loop, `S1` at iteration `i` precedes `S2` at
/// iteration `i'` iff `i < i'` or (`i = i'` and `S1` is textually
/// first):
///
/// ```
/// use shackle_ir::schedule::{before_disjuncts, SchedElem};
/// let s1 = [SchedElem::Text(0), SchedElem::Var("I".into()), SchedElem::Text(0)];
/// let s2 = [SchedElem::Text(0), SchedElem::Var("I".into()), SchedElem::Text(1)];
/// let d = before_disjuncts(&s1, &s2, &|v| Some(format!("s${v}")), &|v| {
///     Some(format!("t${v}"))
/// });
/// assert_eq!(d.len(), 2); // i < i'  or  i = i' (textual)
/// ```
pub fn before_disjuncts(
    sa: &[SchedElem],
    sb: &[SchedElem],
    rename_a: &dyn Fn(&str) -> Option<String>,
    rename_b: &dyn Fn(&str) -> Option<String>,
) -> Vec<System> {
    let mut disjuncts = Vec::new();
    let mut eqs: Vec<Constraint> = Vec::new();
    let ra = |v: &str| rename_a(v).unwrap_or_else(|| v.to_string());
    let rb = |v: &str| rename_b(v).unwrap_or_else(|| v.to_string());
    for k in 0..sa.len().min(sb.len()) {
        match (&sa[k], &sb[k]) {
            (SchedElem::Text(x), SchedElem::Text(y)) => {
                if x < y {
                    // statically before at this level
                    disjuncts.push(System::from_constraints(eqs.clone()));
                    return disjuncts;
                } else if x > y {
                    // statically after; no more disjuncts possible
                    return disjuncts;
                }
                // equal: continue
            }
            (SchedElem::Var(u), SchedElem::Var(v)) => {
                let au = LinExpr::var(ra(u));
                let bv = LinExpr::var(rb(v));
                let mut d = System::from_constraints(eqs.clone());
                d.add(Constraint::lt(au.clone(), bv.clone()));
                disjuncts.push(d);
                eqs.push(Constraint::eq(au, bv));
            }
            _ => panic!(
                "schedules diverge structurally at position {k}; \
                 both must come from the same program tree"
            ),
        }
    }
    // Exhausted with all components equal: the instances coincide (same
    // statement, same iteration), which is not a strict "before".
    disjuncts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(k: usize) -> SchedElem {
        SchedElem::Text(k)
    }

    fn v(n: &str) -> SchedElem {
        SchedElem::Var(n.into())
    }

    fn s_prefix(var: &str) -> Option<String> {
        Some(format!("s${var}"))
    }

    fn t_prefix(var: &str) -> Option<String> {
        Some(format!("t${var}"))
    }

    fn holds(disjuncts: &[System], env: &dyn Fn(&str) -> i64) -> bool {
        disjuncts.iter().any(|s| s.eval(env))
    }

    #[test]
    fn self_dependence_within_one_loop() {
        // S inside loop I: instance s before instance t iff s$I < t$I.
        let sched = [t(0), v("I"), t(0)];
        let d = before_disjuncts(&sched, &sched, &s_prefix, &t_prefix);
        assert_eq!(d.len(), 1);
        assert!(holds(&d, &|name| if name == "s$I" { 1 } else { 2 }));
        assert!(!holds(&d, &|_| 2));
        assert!(!holds(&d, &|name| if name == "s$I" { 3 } else { 2 }));
    }

    #[test]
    fn textual_order_breaks_ties() {
        // right-looking Cholesky: S1 at position 0, S2's loop at 1,
        // inside the same J loop.
        let s1 = [t(0), v("J"), t(0)];
        let s2 = [t(0), v("J"), t(1), v("I"), t(0)];
        let d = before_disjuncts(&s1, &s2, &s_prefix, &t_prefix);
        // s$J < t$J, or s$J = t$J (then S1 textually first)
        assert_eq!(d.len(), 2);
        let env_eq = |name: &str| match name {
            "s$J" | "t$J" => 3,
            _ => 0,
        };
        assert!(holds(&d, &env_eq));
        // reversed direction: S2 before S1 requires strictly smaller J
        let dr = before_disjuncts(&s2, &s1, &s_prefix, &t_prefix);
        assert_eq!(dr.len(), 1);
        let env_eq2 = |name: &str| match name {
            "s$J" | "t$J" => 3,
            "s$I" => 4,
            _ => 0,
        };
        assert!(!holds(&dr, &env_eq2));
        let env_lt = |name: &str| match name {
            "s$J" => 2,
            "t$J" => 3,
            "s$I" => 9,
            _ => 0,
        };
        assert!(holds(&dr, &env_lt));
    }

    #[test]
    fn disjoint_subtrees_are_static() {
        // two statements under different top-level loops
        let s1 = [t(0), v("I"), t(0)];
        let s2 = [t(1), v("J"), t(0)];
        let d12 = before_disjuncts(&s1, &s2, &s_prefix, &t_prefix);
        assert_eq!(d12.len(), 1);
        assert!(d12[0].is_empty()); // unconditionally before
        let d21 = before_disjuncts(&s2, &s1, &s_prefix, &t_prefix);
        assert!(d21.is_empty()); // never before
    }

    #[test]
    fn exhaustive_three_level_check() {
        // Two statements sharing two loops: S1 = body[0] of inner,
        // S2 = body[1] of inner.
        let s1 = [t(0), v("I"), t(0), v("J"), t(0)];
        let s2 = [t(0), v("I"), t(0), v("J"), t(1)];
        let d = before_disjuncts(&s1, &s2, &s_prefix, &t_prefix);
        for si in 0..3 {
            for sj in 0..3 {
                for ti in 0..3 {
                    for tj in 0..3 {
                        let env = move |name: &str| match name {
                            "s$I" => si,
                            "s$J" => sj,
                            "t$I" => ti,
                            _ => tj,
                        };
                        // S1 before S2 iff (si,sj,0) <= (ti,tj,1) lexic.
                        let expect = (si, sj, 0) < (ti, tj, 1);
                        assert_eq!(holds(&d, &env), expect);
                    }
                }
            }
        }
    }
}
