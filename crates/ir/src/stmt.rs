//! Assignment statements.

use crate::{ArrayRef, ScalarExpr};
use std::fmt;

/// An assignment statement `write := rhs`, the unit of scheduling in the
/// paper ("statement instance" = one execution of a [`Statement`] for
/// fixed surrounding loop indices).
///
/// # Examples
///
/// ```
/// use shackle_ir::{ArrayRef, ScalarExpr, Statement};
/// let c = ArrayRef::vars("C", &["I", "J"]);
/// let rhs = ScalarExpr::from(c.clone())
///     + ScalarExpr::from(ArrayRef::vars("A", &["I", "K"]))
///         * ArrayRef::vars("B", &["K", "J"]).into();
/// let s = Statement::new("S1", c, rhs);
/// assert_eq!(s.reads().len(), 3);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Statement {
    label: String,
    write: ArrayRef,
    rhs: ScalarExpr,
}

impl Statement {
    /// Create a statement with a display label (e.g. `"S1"`).
    pub fn new(label: impl Into<String>, write: ArrayRef, rhs: ScalarExpr) -> Self {
        Self {
            label: label.into(),
            write,
            rhs,
        }
    }

    /// The statement's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The written reference (left-hand side).
    pub fn write(&self) -> &ArrayRef {
        &self.write
    }

    /// The right-hand side expression.
    pub fn rhs(&self) -> &ScalarExpr {
        &self.rhs
    }

    /// All references read (the RHS loads, left to right).
    pub fn reads(&self) -> Vec<&ArrayRef> {
        self.rhs.reads()
    }

    /// All references with a write flag: the LHS first, then the reads.
    pub fn refs(&self) -> Vec<(&ArrayRef, bool)> {
        let mut out = vec![(&self.write, true)];
        out.extend(self.reads().into_iter().map(|r| (r, false)));
        out
    }

    /// References to a particular array (for choosing shackled refs).
    pub fn refs_to(&self, array: &str) -> Vec<&ArrayRef> {
        self.refs()
            .into_iter()
            .map(|(r, _)| r)
            .filter(|r| r.array() == array)
            .collect()
    }

    /// Substitute an affine expression for a variable throughout.
    pub fn substitute(&self, var: &str, replacement: &shackle_polyhedra::LinExpr) -> Statement {
        Statement {
            label: self.label.clone(),
            write: self.write.substitute(var, replacement),
            rhs: self.rhs.substitute(var, replacement),
        }
    }

    /// Rename loop variables throughout the statement.
    pub fn rename_vars(&self, f: &dyn Fn(&str) -> Option<String>) -> Statement {
        Statement {
            label: self.label.clone(),
            write: self.write.rename_vars(f),
            rhs: self.rhs.rename_vars(f),
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} = {}", self.label, self.write, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refs_and_display() {
        let w = ArrayRef::vars("A", &["I", "J"]);
        let s = Statement::new(
            "S2",
            w.clone(),
            ScalarExpr::from(w.clone()) / ScalarExpr::from(ArrayRef::vars("A", &["J", "J"])),
        );
        assert_eq!(s.refs().len(), 3);
        assert!(s.refs()[0].1);
        assert_eq!(s.refs_to("A").len(), 3);
        assert_eq!(s.refs_to("B").len(), 0);
        assert_eq!(s.to_string(), "S2: A[I, J] = (A[I, J] / A[J, J])");
    }
}
