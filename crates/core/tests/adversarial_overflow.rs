//! Adversarial parser-to-solver coverage: kernels whose index
//! expressions carry coefficients large enough to overflow i64
//! arithmetic inside the Omega test (`lcm`, row combination, equality
//! substitution) must flow through the whole pipeline — parse →
//! dependence analysis → legality — without panicking. Either the i128
//! promotion rescues the computation and the verdict is *proven*, or
//! the solver refuses with a clean [`PolyError`] and legality degrades
//! to conservative rejection ([`LegalityReport::unknown`]).

use proptest::prelude::*;
use shackle_core::{check_legality_with_deps, Blocking, CutSet, Shackle};
use shackle_ir::deps::dependences;
use shackle_ir::parse::parse;
use shackle_polyhedra::{Budget, PolyError, Verdict};

/// 2^40 and 2^40 + 1: coprime, so FM's `lcm` on them is ~2^80 — far
/// past i64. The i128 promotion recomputes the combined rows exactly
/// and narrows back, so these dependences are *proven*, not refused.
const RESCUED_KERNEL: &str = "program overflow-probe
param N
array A(N)

do I = 1 .. N
  do J = 1 .. N
    S1: A[1099511627776 * I + 1099511627777 * J] = A[1099511627777 * I + 1099511627776 * J] + 1.0
";

/// Equality substitution multiplies the 2^32 subscript coefficient of
/// one dimension by the 2^32 coefficient of the other, producing 2^64
/// rows with gcd 1 — beyond any i64 narrowing. The solver must refuse
/// with `PolyError::Overflow`, never panic.
const REFUSED_KERNEL: &str = "program subst-overflow
param N
array A(N, N)

do I = 1 .. N
  do J = 1 .. N
    do K = 1 .. N
      S1: A[I + 4294967296 * J, 4294967296 * I + K] = A[I + 4294967296 * J, 4294967296 * I + K] + 1.0
";

#[test]
fn rescued_kernel_is_proven_by_i128_promotion() {
    let p = parse(RESCUED_KERNEL).expect("parser accepts 2^40-scale coefficients");
    let deps = dependences(&p);
    assert!(!deps.is_empty());
    for d in &deps {
        for s in &d.systems {
            // dependences() keeps only disjuncts that are not proven
            // empty; with the rescue they are all proven inhabited
            assert_eq!(s.try_is_integer_feasible(), Ok(true), "{s}");
            assert_eq!(s.decide(&Budget::default()), Verdict::Yes);
        }
    }
    // Legality's violation probes add tie constraints over the same
    // 2^40 subscripts, which can push past even the i128 rescue; the
    // report must stay sound either way (Unknown rejects) — and, above
    // all, complete without a panic.
    let shackle = Shackle::on_writes(&p, Blocking::new("A", vec![CutSet::axis(0, 1, 8)]));
    let rep = check_legality_with_deps(&p, std::slice::from_ref(&shackle), &deps);
    assert_eq!(
        rep.is_legal(),
        rep.violations.is_empty() && rep.unknown.is_empty()
    );
}

#[test]
fn refused_kernel_degrades_to_conservative_rejection() {
    let p = parse(REFUSED_KERNEL).expect("parser accepts 2^32-scale coefficients");
    let deps = dependences(&p);
    assert_eq!(deps.len(), 3, "self-dependence: output + flow + anti");
    for d in &deps {
        for s in &d.systems {
            // a clean refusal, not a panic — and Unknown, not a guess
            assert!(
                matches!(s.try_is_integer_feasible(), Err(PolyError::Overflow { .. })),
                "expected overflow refusal for {s}"
            );
            assert_eq!(s.decide(&Budget::default()), Verdict::Unknown);
        }
    }
    let shackle = Shackle::on_writes(
        &p,
        Blocking::new("A", vec![CutSet::axis(0, 2, 8), CutSet::axis(1, 2, 8)]),
    );
    let rep = check_legality_with_deps(&p, std::slice::from_ref(&shackle), &deps);
    // Unknown is disqualifying: no violation was *proven*, but the
    // blocking must still be rejected so generated code stays correct
    assert!(!rep.is_legal());
    assert!(rep.violations.is_empty());
    assert!(!rep.unknown.is_empty());
}

#[test]
fn hostile_coefficient_ceiling_is_unknown_not_wrong() {
    // The same rescued kernel under a budget whose coefficient ceiling
    // is below the subscripts: the solver may refuse (Unknown) but must
    // never prove the opposite of the default-budget verdict. Proven
    // verdicts are (correctly) replayed budget-independently from the
    // memo cache — `dependences` has already proven these systems — so
    // observe the raw solver with the cache off.
    let p = parse(RESCUED_KERNEL).unwrap();
    let deps = dependences(&p);
    let tiny = Budget {
        max_coeff: 1 << 20,
        ..Budget::default()
    };
    let was = shackle_polyhedra::cache::set_cache_enabled(false);
    let mut refusals = 0u32;
    for d in &deps {
        for s in &d.systems {
            match s.decide(&tiny) {
                Verdict::Unknown => refusals += 1,
                v => assert_eq!(v, s.decide(&Budget::default()), "{s}"),
            }
        }
    }
    shackle_polyhedra::cache::set_cache_enabled(was);
    assert!(refusals > 0, "2^40 coefficients must trip a 2^20 ceiling");
}

fn scaled_kernel(shift: u32, flip: bool) -> String {
    let a = 1i64 << shift;
    let b = a + 1;
    let (ca, cb) = if flip { (b, a) } else { (a, b) };
    format!(
        "program scaled-probe
param N
array A(N)

do I = 1 .. N
  do J = 1 .. N
    S1: A[{ca} * I + {cb} * J] = A[{cb} * I + {ca} * J] + 1.0
"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Across the whole magnitude range where i64 arithmetic starts to
    /// crack (2^31 .. 2^50), every parsed kernel's dependence systems
    /// decide without panicking, `decide` agrees with the fallible
    /// entry point, and a hostile budget can only refuse — never
    /// contradict a proven verdict.
    #[test]
    fn parser_scale_coefficients_never_panic(shift in 31u32..51, flip in prop::bool::ANY) {
        let p = parse(&scaled_kernel(shift, flip)).expect("parses");
        let tiny = Budget { max_coeff: 1 << 24, ..Budget::default() };
        for d in dependences(&p) {
            for s in &d.systems {
                let direct = s.try_is_integer_feasible();
                let verdict = s.decide(&Budget::default());
                match direct {
                    Ok(v) => prop_assert_eq!(verdict.known(), Some(v)),
                    Err(_) => prop_assert_eq!(verdict, Verdict::Unknown),
                }
                if let v @ (Verdict::Yes | Verdict::No) = s.decide(&tiny) {
                    prop_assert_eq!(v, verdict, "hostile budget contradicted {}", s);
                }
            }
        }
    }

    /// Legality over the scaled kernels is always *sound*: any report
    /// with undecided dependences rejects the blocking.
    #[test]
    fn unknown_dependences_always_reject(shift in 31u32..51) {
        let p = parse(&scaled_kernel(shift, false)).expect("parses");
        let deps = dependences(&p);
        let shackle = Shackle::on_writes(&p, Blocking::new("A", vec![CutSet::axis(0, 1, 4)]));
        let rep = check_legality_with_deps(&p, std::slice::from_ref(&shackle), &deps);
        if !rep.unknown.is_empty() {
            prop_assert!(!rep.is_legal());
        }
        prop_assert_eq!(
            rep.is_legal(),
            rep.violations.is_empty() && rep.unknown.is_empty()
        );
    }
}
