//! Property tests for the transformation framework: over random block
//! sizes, traversal orders and problem sizes, the canonical shackles
//! stay legal and the generated code stays semantically equivalent
//! (the interpreter is the oracle). Also checks §6's algebra of
//! products: a product of legal shackles is legal, in any order.

use proptest::prelude::*;
use shackle_core::{
    check_legality_with_deps, naive::generate_naive, scan::generate_scanned, Blocking, CutSet,
    Shackle,
};
use shackle_exec::verify::{check_equivalence, hash_init, spd_init};
use shackle_ir::deps::dependences;
use shackle_ir::{kernels, ArrayRef};
use std::collections::BTreeMap;

fn params(n: i64) -> BTreeMap<String, i64> {
    BTreeMap::from([("N".to_string(), n)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Matmul shackled on C: legal and bit-equivalent for arbitrary
    /// (possibly different per-dimension) block widths and sizes.
    #[test]
    fn matmul_any_blocking_equivalent(
        w1 in 1i64..9,
        w2 in 1i64..9,
        n in 1i64..18,
    ) {
        let p = kernels::matmul_ijk();
        let blocking = Blocking::new(
            "C",
            vec![CutSet::axis(0, 2, w1), CutSet::axis(1, 2, w2)],
        );
        let s = Shackle::on_writes(&p, blocking);
        let deps = dependences(&p);
        prop_assert!(check_legality_with_deps(&p, std::slice::from_ref(&s), &deps).is_legal());
        let scanned = generate_scanned(&p, std::slice::from_ref(&s));
        let eq = check_equivalence(&p, &scanned, &params(n), hash_init(n as u64));
        prop_assert_eq!(eq.max_rel_diff, 0.0);
        let naive = generate_naive(&p, &[s]);
        let eq = check_equivalence(&p, &naive, &params(n), hash_init(n as u64));
        prop_assert_eq!(eq.max_rel_diff, 0.0);
    }

    /// Cholesky writes shackle: equivalent for arbitrary widths/sizes.
    #[test]
    fn cholesky_any_width_equivalent(w in 1i64..7, n in 1i64..14) {
        let p = kernels::cholesky_right();
        let s = Shackle::on_writes(&p, Blocking::square("A", 2, &[1, 0], w));
        let scanned = generate_scanned(&p, &[s]);
        let eq = check_equivalence(
            &p,
            &scanned,
            &params(n),
            spd_init("A", n as usize, w as u64),
        );
        prop_assert!(eq.within(1e-10), "w={w} n={n}: {}", eq.max_rel_diff);
    }

    /// §6: "the product of two shackles is always legal if the two
    /// shackles are legal by themselves" — over random legal factors
    /// for matmul, any product (either order) is legal.
    #[test]
    fn product_of_legal_shackles_is_legal(
        pick in prop::collection::vec(0usize..3, 1..3),
        w in 2i64..26,
    ) {
        let p = kernels::matmul_ijk();
        let deps = dependences(&p);
        let mk = |which: usize| -> Shackle {
            let (array, idx): (&str, [&str; 2]) = match which {
                0 => ("C", ["I", "J"]),
                1 => ("A", ["I", "K"]),
                _ => ("B", ["K", "J"]),
            };
            Shackle::new(
                &p,
                Blocking::square(array, 2, &[0, 1], w),
                vec![ArrayRef::vars(array, &idx)],
            )
        };
        let factors: Vec<Shackle> = pick.iter().map(|&k| mk(k)).collect();
        for f in &factors {
            prop_assert!(check_legality_with_deps(&p, std::slice::from_ref(f), &deps).is_legal());
        }
        prop_assert!(check_legality_with_deps(&p, &factors, &deps).is_legal());
    }

    /// Instance counts are preserved exactly: the shackled program
    /// executes the same number of statement instances (checked inside
    /// check_equivalence, surfaced here over random shapes).
    #[test]
    fn instance_count_preserved(w in 1i64..6, n in 1i64..12) {
        let p = kernels::gauss();
        let s = Shackle::on_writes(&p, Blocking::square("A", 2, &[1, 0], w));
        let scanned = generate_scanned(&p, &[s]);
        let eq = check_equivalence(
            &p,
            &scanned,
            &params(n),
            spd_init("A", n as usize, 3),
        );
        prop_assert_eq!(eq.reference.instances, eq.transformed.instances);
        prop_assert_eq!(eq.reference.flops, eq.transformed.flops);
        prop_assert!(eq.within(1e-10));
    }
}

/// The §6 remark that a product `M1 × M2` can be legal even when `M2`
/// alone is illegal ("the outer loop in the loop nest carries the
/// dependence that causes difficulty for the inner loop"): exhibit it
/// on a forward recurrence where the outer factor strictly orders every
/// dependent pair, so a reversed — individually illegal — inner factor
/// becomes harmless.
#[test]
fn product_can_fix_an_illegal_factor() {
    use shackle_ir::{loop_, stmt, ArrayDecl, ScalarExpr, Statement};
    use shackle_polyhedra::LinExpr;
    let aref = |e: LinExpr| ArrayRef::new("A", vec![e]);
    let s = Statement::new(
        "S",
        aref(LinExpr::var("I")),
        ScalarExpr::from(aref(LinExpr::var("I") - LinExpr::constant(1))),
    );
    let p = shackle_ir::Program::new(
        "recurrence",
        vec!["N".into()],
        vec![ArrayDecl::new("A", vec![LinExpr::var("N")])],
        vec![s],
        vec![loop_(
            "I",
            LinExpr::constant(1),
            LinExpr::var("N"),
            vec![stmt(0)],
        )],
    );
    let deps = dependences(&p);
    // reversed traversal alone: illegal (violates the flow dependence)
    let bad = Shackle::new(
        &p,
        Blocking::new("A", vec![CutSet::axis(0, 1, 8).reversed()]),
        vec![ArrayRef::vars("A", &["I"])],
    );
    assert!(!check_legality_with_deps(&p, std::slice::from_ref(&bad), &deps).is_legal());
    // an outer width-1 forward factor strictly orders every dependent
    // pair, so the product is legal even though `bad` alone is not
    let fine = Shackle::new(
        &p,
        Blocking::new("A", vec![CutSet::axis(0, 1, 1)]),
        vec![ArrayRef::vars("A", &["I"])],
    );
    assert!(check_legality_with_deps(&p, std::slice::from_ref(&fine), &deps).is_legal());
    assert!(
        check_legality_with_deps(&p, &[fine, bad], &deps).is_legal(),
        "fine × bad must be legal: the outer factor carries the dependence"
    );
}

/// §8's back-solve example: blocks of `X` cannot be walked forward
/// ("this order of traversing blocks may not be legal — triangular
/// back-solve is an example"), but the reversed traversal is legal and
/// the generated code is equivalent.
#[test]
fn backsolve_requires_reversed_traversal() {
    let p = kernels::backsolve();
    let deps = dependences(&p);
    let xref = |v: &str| {
        ArrayRef::new(
            "X",
            vec![
                shackle_polyhedra::LinExpr::var("N") + shackle_polyhedra::LinExpr::constant(1)
                    - shackle_polyhedra::LinExpr::var(v),
            ],
        )
    };
    let mk = |rev: bool| {
        let cut = if rev {
            CutSet::axis(0, 1, 4).reversed()
        } else {
            CutSet::axis(0, 1, 4)
        };
        Shackle::new(
            &p,
            Blocking::new("X", vec![cut]),
            vec![xref("Ip"), xref("Jp")],
        )
    };
    // forward traversal: illegal (data flows from high X indices down)
    assert!(!check_legality_with_deps(&p, &[mk(false)], &deps).is_legal());
    // reversed traversal: legal, and the scanned code solves correctly
    let rev = mk(true);
    assert!(check_legality_with_deps(&p, std::slice::from_ref(&rev), &deps).is_legal());
    let scanned = generate_scanned(&p, &[rev]);
    for n in [1i64, 3, 7, 12] {
        // well-conditioned upper-triangular system
        let init = move |name: &str, idx: &[usize]| -> f64 {
            if name == "U" {
                if idx[0] == idx[1] {
                    4.0
                } else if idx[0] < idx[1] {
                    1.0 / ((idx[0] * 7 + idx[1]) % 9 + 2) as f64
                } else {
                    0.0
                }
            } else {
                1.0 + (idx[0] % 5) as f64
            }
        };
        let eq = check_equivalence(&p, &scanned, &params(n), init);
        assert_eq!(eq.max_rel_diff, 0.0, "n={n}");
    }
}

/// The relaxation code of §8: *neither* traversal direction admits a
/// legal single-sweep shackle — the case that motivates the multipass
/// executor (`shackle-exec::multipass`).
#[test]
fn gauss_seidel_has_no_legal_single_sweep() {
    let p = kernels::gauss_seidel_1d();
    let deps = dependences(&p);
    for reversed in [false, true] {
        let cut = if reversed {
            CutSet::axis(0, 1, 4).reversed()
        } else {
            CutSet::axis(0, 1, 4)
        };
        let s = Shackle::new(
            &p,
            Blocking::new("A", vec![cut]),
            vec![ArrayRef::vars("A", &["I"])],
        );
        assert!(
            !check_legality_with_deps(&p, &[s], &deps).is_legal(),
            "direction reversed={reversed} should be illegal"
        );
    }
}
