//! The Unknown verdict exists for adversarial inputs; the paper's own
//! kernels must never need it. This test drives the full legality
//! search over every in-repo kernel and pins `poly.unknown == 0`: the
//! default budget decides every dependence probe outright, so the
//! conservative-rejection path cannot silently shrink the search space
//! the figures are built on.

use shackle_core::search::{enumerate_legal, SearchConfig};
use shackle_ir::kernels;
use shackle_polyhedra::cache;

#[test]
fn search_over_every_kernel_is_unknown_free() {
    let before = cache::stats().unknown_verdicts;
    let mut legal_total = 0usize;
    for p in [
        kernels::matmul_ijk(),
        kernels::cholesky_right(),
        kernels::cholesky_left(),
        kernels::adi(),
        kernels::gauss(),
        kernels::qr_householder(),
        kernels::banded_cholesky(),
        kernels::backsolve(),
        kernels::gauss_seidel_1d(),
    ] {
        let legal = enumerate_legal(&p, &SearchConfig::default());
        legal_total += legal.len();
    }
    assert!(legal_total > 0, "the search found no legal shackles at all");
    let after = cache::stats().unknown_verdicts;
    assert_eq!(
        after - before,
        0,
        "legality search over the in-repo kernels hit {} Unknown verdicts",
        after - before
    );
}
