//! Deterministic parallel fan-out over scoped threads.
//!
//! Both the compile-time search ([`crate::search`]) and the benchmark
//! harness evaluate embarrassingly parallel lists of independent items
//! (candidate shackles to legality-check, products to score, figure
//! points to simulate). [`map`] fans them out over scoped threads —
//! thread count from `SHACKLE_THREADS`, defaulting to the machine's
//! available parallelism — and reassembles results **by input index**,
//! so the output is byte-identical to a serial run regardless of
//! thread count or completion order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, MutexGuard};

/// The in-process thread-count override installed by [`with_threads`]
/// (0 = no override). A process-local atomic rather than the env var:
/// `set_var`/`remove_var` are unsound when any other thread may be
/// reading the environment concurrently (as a sweep already fanned out
/// on worker threads does through [`thread_count`]), so overrides never
/// touch the environment at all.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Worker threads to use: the [`with_threads`] override if one is
/// active, else `SHACKLE_THREADS` if set to a positive integer,
/// otherwise the available parallelism (1 if unknown). The env var is
/// only ever *read* here — it is consulted as the external default and
/// never mutated by this module.
pub fn thread_count() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Acquire);
    if o > 0 {
        return o;
    }
    std::env::var("SHACKLE_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Serializes every [`with_threads`] override in the process: the
/// override is global, so two tests (or harness passes) installing it
/// concurrently would observe each other's values mid-run.
static THREADS_ENV_LOCK: Mutex<()> = Mutex::new(());

thread_local! {
    /// Whether *this* thread currently holds [`THREADS_ENV_LOCK`]
    /// through a live [`ThreadsGuard`]. A nested [`with_threads`] on
    /// the same thread (a serial-pinned pipeline invoked under an
    /// outer override) must not re-lock the non-reentrant mutex — the
    /// outer guard already serializes it against other threads.
    static HOLDS_THREADS_LOCK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Exclusive hold on the process-wide thread-count override; the
/// previous override is restored (and the lock released) on drop.
pub struct ThreadsGuard {
    prev: usize,
    /// `None` for a nested guard riding on an outer guard's lock.
    lock: Option<MutexGuard<'static, ()>>,
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.store(self.prev, Ordering::Release);
        if self.lock.is_some() {
            HOLDS_THREADS_LOCK.with(|h| h.set(false));
        }
    }
}

/// Override [`thread_count`] to `threads` for the lifetime of the
/// returned guard, restoring the prior override afterwards. All users
/// of this helper are mutually serialized behind one process-wide
/// mutex (re-entrant on the same thread, so an override can nest
/// inside another), so determinism tests that compare serial vs.
/// parallel sweeps cannot race each other's overrides. The override
/// lives in a process-local atomic — the `SHACKLE_THREADS` environment
/// variable is never written, so concurrent readers of the environment
/// are safe.
pub fn with_threads(threads: usize) -> ThreadsGuard {
    let lock = if HOLDS_THREADS_LOCK.with(|h| h.get()) {
        None
    } else {
        let g = THREADS_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        HOLDS_THREADS_LOCK.with(|h| h.set(true));
        Some(g)
    };
    let prev = THREAD_OVERRIDE.swap(threads, Ordering::AcqRel);
    ThreadsGuard { prev, lock }
}

/// Apply `f` to every item on [`thread_count`] scoped threads,
/// returning results in input order.
pub fn map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    map_with(thread_count(), items, f)
}

/// As [`map`] with an explicit thread count. Results are collected
/// into their input slots, so any `threads` value yields the same
/// output as `threads == 1`. A worker panic propagates.
pub fn map_with<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    // Workers adopt the spawning thread's probe span path, so phase
    // attribution is identical at any thread count (empty, and free,
    // when instrumentation is disabled).
    let ambient = shackle_probe::current_path();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (next, f, ambient) = (&next, &f, ambient.clone());
            s.spawn(move || {
                let _path = shackle_probe::with_path(ambient);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    if tx.send((i, f(&items[i]))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every item produces a result"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_with_matches_serial_at_any_thread_count() {
        let items: Vec<u64> = (0..101).collect();
        let f = |x: &u64| x * x + 1;
        let serial = map_with(1, &items, f);
        for threads in [2, 3, 8, 200] {
            assert_eq!(map_with(threads, &items, f), serial);
        }
    }

    #[test]
    fn empty_and_single_item_lists() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_with(4, &empty, |x| *x).is_empty());
        assert_eq!(map_with(4, &[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let before = thread_count();
        {
            let _g = with_threads(3);
            assert_eq!(thread_count(), 3);
            {
                let _h = with_threads(1);
                assert_eq!(thread_count(), 1);
            }
            assert_eq!(thread_count(), 3);
        }
        assert_eq!(thread_count(), before);
    }

    /// Regression for the `SHACKLE_THREADS` override race: worker
    /// threads hammer [`thread_count`] (an environment *read*) while
    /// the main thread repeatedly installs and drops overrides. With
    /// the old `set_var`/`remove_var` implementation this was unsound
    /// concurrent env mutation on Unix; the override now lives in a
    /// process-local atomic and the environment is never written.
    #[test]
    fn concurrent_thread_count_reads_race_with_threads_safely() {
        let env_before = std::env::var("SHACKLE_THREADS").ok();
        let stop = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let stop = &stop;
                s.spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        // Any value is fine; the point is that a read
                        // concurrent with an override toggle is safe.
                        assert!(thread_count() >= 1);
                    }
                });
            }
            for round in 0..200 {
                let t = 1 + round % 7;
                let _g = with_threads(t);
                assert_eq!(thread_count(), t);
                let out = map(&[1u64, 2, 3, 4, 5], |x| x * 2);
                assert_eq!(out, vec![2, 4, 6, 8, 10]);
            }
            stop.store(1, Ordering::Relaxed);
        });
        // No env mutation outside the process-local override path.
        assert_eq!(std::env::var("SHACKLE_THREADS").ok(), env_before);
    }
}
