//! Deterministic parallel fan-out over scoped threads.
//!
//! Both the compile-time search ([`crate::search`]) and the benchmark
//! harness evaluate embarrassingly parallel lists of independent items
//! (candidate shackles to legality-check, products to score, figure
//! points to simulate). [`map`] fans them out over scoped threads —
//! thread count from `SHACKLE_THREADS`, defaulting to the machine's
//! available parallelism — and reassembles results **by input index**,
//! so the output is byte-identical to a serial run regardless of
//! thread count or completion order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, MutexGuard};

/// Worker threads to use: `SHACKLE_THREADS` if set to a positive
/// integer, otherwise the available parallelism (1 if unknown).
pub fn thread_count() -> usize {
    std::env::var("SHACKLE_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Serializes every `SHACKLE_THREADS` override in the process: the env
/// var is global, so two tests (or harness passes) mutating it
/// concurrently would race each other's reads in [`thread_count`].
static THREADS_ENV_LOCK: Mutex<()> = Mutex::new(());

/// Exclusive hold on the process-wide `SHACKLE_THREADS` override; the
/// previous value is restored (and the lock released) on drop.
pub struct ThreadsGuard {
    prev: Option<String>,
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        match self.prev.take() {
            Some(v) => std::env::set_var("SHACKLE_THREADS", v),
            None => std::env::remove_var("SHACKLE_THREADS"),
        }
    }
}

/// Set `SHACKLE_THREADS` to `threads` for the lifetime of the returned
/// guard, restoring the prior value afterwards. All users of this
/// helper are mutually serialized behind one process-wide mutex, so
/// determinism tests that compare serial vs. parallel sweeps cannot
/// race each other's overrides. Every test or harness that needs a
/// specific thread count must go through here rather than touching the
/// env var directly.
pub fn with_threads(threads: usize) -> ThreadsGuard {
    let lock = THREADS_ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::env::var("SHACKLE_THREADS").ok();
    std::env::set_var("SHACKLE_THREADS", threads.to_string());
    ThreadsGuard { prev, _lock: lock }
}

/// Apply `f` to every item on [`thread_count`] scoped threads,
/// returning results in input order.
pub fn map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    map_with(thread_count(), items, f)
}

/// As [`map`] with an explicit thread count. Results are collected
/// into their input slots, so any `threads` value yields the same
/// output as `threads == 1`. A worker panic propagates.
pub fn map_with<T: Sync, R: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    // Workers adopt the spawning thread's probe span path, so phase
    // attribution is identical at any thread count (empty, and free,
    // when instrumentation is disabled).
    let ambient = shackle_probe::current_path();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (next, f, ambient) = (&next, &f, ambient.clone());
            s.spawn(move || {
                let _path = shackle_probe::with_path(ambient);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    if tx.send((i, f(&items[i]))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every item produces a result"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_with_matches_serial_at_any_thread_count() {
        let items: Vec<u64> = (0..101).collect();
        let f = |x: &u64| x * x + 1;
        let serial = map_with(1, &items, f);
        for threads in [2, 3, 8, 200] {
            assert_eq!(map_with(threads, &items, f), serial);
        }
    }

    #[test]
    fn empty_and_single_item_lists() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_with(4, &empty, |x| *x).is_empty());
        assert_eq!(map_with(4, &[7u32], |x| x + 1), vec![8]);
    }
}
