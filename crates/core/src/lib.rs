//! Data shackling: data-centric multi-level blocking.
//!
//! This crate implements the primary contribution of *Kodukula, Ahmed &
//! Pingali, "Data-centric Multi-level Blocking" (PLDI 1997)*:
//!
//! * [`Blocking`] / [`CutSet`] — cutting planes that partition an array
//!   into blocks visited in lexicographic order (§4.1);
//! * [`Shackle`] — a blocking plus one shackled reference per statement
//!   (Definition 1), with the §5.3 dummy-reference mechanism;
//! * [`check_legality`] — Theorem 1's exact ILP legality test, via the
//!   Omega test;
//! * shackle **products** (Definition 2): every API takes `&[Shackle]`,
//!   the Cartesian product of the factors, which is also how §6.3
//!   *multi-level blocking* is expressed (one factor per memory level);
//! * [`span::unconstrained_refs`] — Theorem 2's access-matrix span test
//!   guiding how large a product needs to be;
//! * two code generators: the naive Figure 5 form
//!   ([`naive::generate_naive`]) and the simplified scanner
//!   ([`scan::generate_scanned`]) reproducing Figures 6, 7, 10 and
//!   14(ii).
//!
//! # Quick start
//!
//! ```
//! use shackle_core::{check_legality, scan::generate_scanned, Blocking, Shackle};
//! use shackle_ir::kernels;
//!
//! let p = kernels::matmul_ijk();
//! let shackle = Shackle::on_writes(&p, Blocking::square("C", 2, &[0, 1], 25));
//! assert!(check_legality(&p, &[shackle.clone()]).is_legal());
//! let blocked = generate_scanned(&p, &[shackle]);
//! println!("{blocked}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocking;
mod legality;
mod shackle;

pub mod codegen;
pub mod par;
pub mod prelude;
pub mod search;
pub mod span;

pub use blocking::{Blocking, CutSet};
pub use codegen::{naive, scan, simplify_ast};
pub use legality::{
    check_legality, check_legality_reference, check_legality_with_deps,
    check_legality_with_deps_budget, is_legal_with_deps, LegalityReport, Violation,
};
pub use shackle::Shackle;
