//! Automatic shackle selection — the paper's §8 "ongoing work",
//! implemented: "a search method that enumerates over plausible data
//! shackles, evaluates each one and picks the best."
//!
//! The search space follows the paper's hints:
//!
//! * cutting planes are axis-aligned (§6.2: "to a first order of
//!   approximation, the orientation of cutting planes is irrelevant …
//!   provided the blocks have the same volume"), applied in each
//!   dimension order;
//! * per statement, the candidate shackled references are the
//!   statement's actual references to the blocked array (callers can
//!   extend the candidate set with dummy references);
//! * candidates are filtered by the exact Theorem 1 legality test;
//! * products are grown greedily using Theorem 2 ("If there is no
//!   statement left which has an unconstrained reference, then there is
//!   no benefit to be obtained from extending the product").
//!
//! Ranking candidates needs a cost model (§8 again); this module keeps
//! the framework cost-model-agnostic: [`enumerate_legal`] returns every
//! legal candidate and the caller scores them (the workspace's
//! benchmark harness scores with the cache simulator; see the
//! `auto_shackle` example).

use crate::legality::LegalityContext;
use crate::{is_legal_with_deps, par, span, Blocking, CutSet, Shackle};
use shackle_ir::deps::{dependences, Dependence};
use shackle_ir::{ArrayRef, Program, StmtId};
use std::sync::LazyLock;

/// Candidates tested by [`enumerate_legal_with_deps`], published to the
/// probe counter `search.candidates`.
static CANDIDATES: LazyLock<&'static shackle_probe::Counter> =
    LazyLock::new(|| shackle_probe::counter("search.candidates"));
/// Candidates surviving the Theorem-1 filter, published to
/// `search.legal`.
static LEGAL: LazyLock<&'static shackle_probe::Counter> =
    LazyLock::new(|| shackle_probe::counter("search.legal"));

/// Search configuration.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Block width used for every cut set during the search (the paper
    /// treats block-size selection as a separate problem).
    pub width: i64,
    /// Consider blocking each array that appears in the program.
    pub arrays: Option<Vec<String>>,
    /// Upper bound on candidates per array (the cross product of
    /// per-statement reference choices can explode; the paper suggests
    /// heuristics to cut the search).
    pub max_candidates_per_array: usize,
    /// Also enumerate reversed-direction cut sets (§8): each dimension
    /// order additionally yields a variant whose cuts all traverse
    /// `Decreasing`, so codes whose data flows from high indices to low
    /// (triangular back-solve) become reachable. Off by default — the
    /// forward-only space is the classic one, and harnesses retry with
    /// this enabled when no forward product fully blocks.
    pub reversed_directions: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            width: 64,
            arrays: None,
            max_candidates_per_array: 256,
            reversed_directions: false,
        }
    }
}

/// A legal candidate shackle with its Theorem 2 diagnosis.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The legal shackle.
    pub shackle: Shackle,
    /// References left unconstrained (empty means fully blocked).
    pub unconstrained: Vec<(StmtId, ArrayRef)>,
}

/// Enumerate every legal single shackle within the configuration.
///
/// For each chosen array, every combination of per-statement shackled
/// references (drawn from the statement's own references to that array;
/// statements with no such reference get the identity-like dummy built
/// from their first reference's subscripts — callers needing smarter
/// dummies should construct shackles manually) is tested with the exact
/// legality check.
///
/// # Examples
///
/// ```
/// use shackle_core::search::{enumerate_legal, SearchConfig};
/// let p = shackle_ir::kernels::cholesky_right();
/// let legal = enumerate_legal(&p, &SearchConfig { width: 64, ..Default::default() });
/// // §6.1's enumeration: three legal reference choices on A, each
/// // under two traversal orders (see EXPERIMENTS.md)
/// assert_eq!(legal.len(), 6);
/// ```
pub fn enumerate_legal(program: &Program, config: &SearchConfig) -> Vec<Candidate> {
    let deps = dependences(program);
    enumerate_legal_with_deps(program, config, &deps)
}

/// As [`enumerate_legal`], reusing precomputed dependences. Candidates
/// are legality-checked in parallel over [`par`] workers (one early-exit
/// Theorem-1 test each) and reassembled in enumeration order, so the
/// result is identical at any `SHACKLE_THREADS` setting.
pub fn enumerate_legal_with_deps(
    program: &Program,
    config: &SearchConfig,
    deps: &[Dependence],
) -> Vec<Candidate> {
    let _phase = shackle_probe::span("enumerate");
    let worklist = candidate_shackles(program, config);
    if shackle_probe::enabled() {
        CANDIDATES.add(worklist.len() as u64);
    }
    let verdicts = par::map(&worklist, |shackle| {
        is_legal_with_deps(program, std::slice::from_ref(shackle), deps)
    });
    if shackle_probe::enabled() {
        LEGAL.add(verdicts.iter().filter(|&&v| v).count() as u64);
    }
    let mut out: Vec<Candidate> = Vec::new();
    for (shackle, legal) in worklist.into_iter().zip(verdicts) {
        if !legal {
            continue;
        }
        // dedupe across dimension orders with identical refs
        if out.iter().any(|c| c.shackle == shackle) {
            continue;
        }
        let unconstrained = span::unconstrained_refs(program, std::slice::from_ref(&shackle));
        out.push(Candidate {
            shackle,
            unconstrained,
        });
    }
    out
}

/// The raw candidate worklist of [`enumerate_legal`], *before* the
/// legality filter, in the search's deterministic enumeration order
/// (array declaration order × dimension orders × per-statement
/// reference cross product). Exposed so harnesses can drive the same
/// space through a different legality strategy (e.g. the uncached
/// serial baseline of the performance report).
pub fn candidate_shackles(program: &Program, config: &SearchConfig) -> Vec<Shackle> {
    let arrays: Vec<String> = config.arrays.clone().unwrap_or_else(|| {
        program
            .arrays()
            .iter()
            .map(|a| a.name().to_string())
            .collect()
    });
    let mut out = Vec::new();
    for array in arrays {
        let Some(decl) = program.array(&array) else {
            continue;
        };
        // candidate shackled references per statement
        let mut choices: Vec<Vec<ArrayRef>> = Vec::new();
        let mut feasible = true;
        for s in program.stmts() {
            let mut refs: Vec<ArrayRef> = Vec::new();
            for r in s.refs_to(&array) {
                if !refs.contains(r) {
                    refs.push(r.clone());
                }
            }
            if refs.is_empty() {
                // no reference to the array: skip this array for the
                // automatic search (a user-supplied dummy is needed)
                feasible = false;
                break;
            }
            choices.push(refs);
        }
        if !feasible {
            continue;
        }
        let total: usize = choices.iter().map(Vec::len).product();
        if total > config.max_candidates_per_array {
            continue;
        }
        // dimension orders: identity and reversed-order application
        let rank = decl.rank();
        let orders: Vec<Vec<usize>> = if rank == 1 {
            vec![vec![0]]
        } else {
            vec![(0..rank).collect(), (0..rank).rev().collect()]
        };
        // forward-direction cuts always; reversed-direction variants
        // (all cuts Decreasing) appended per order when configured
        let directions: &[bool] = if config.reversed_directions {
            &[false, true]
        } else {
            &[false]
        };
        for order in &orders {
            for &reversed in directions {
                for combo in cross_product(&choices) {
                    let cuts: Vec<CutSet> = order
                        .iter()
                        .map(|&d| {
                            let cut = CutSet::axis(d, rank, config.width);
                            if reversed {
                                cut.reversed()
                            } else {
                                cut
                            }
                        })
                        .collect();
                    out.push(Shackle::new(program, Blocking::new(&array, cuts), combo));
                }
            }
        }
    }
    out
}

fn cross_product(choices: &[Vec<ArrayRef>]) -> Vec<Vec<ArrayRef>> {
    let mut acc: Vec<Vec<ArrayRef>> = vec![Vec::new()];
    for c in choices {
        let mut next = Vec::with_capacity(acc.len() * c.len());
        for prefix in &acc {
            for r in c {
                let mut p = prefix.clone();
                p.push(r.clone());
                next.push(p);
            }
        }
        acc = next;
    }
    acc
}

/// Grow a product greedily until Theorem 2 reports no unconstrained
/// references (or no candidate helps): the §6.2 recipe automated.
///
/// Starting from `seed`, repeatedly conjoin the legal candidate that
/// most reduces the number of unconstrained references; ties broken by
/// enumeration order. Every prefix of the result is legal (the product
/// of legal shackles is legal).
///
/// # Examples
///
/// ```
/// use shackle_core::search::{complete_product, enumerate_legal, SearchConfig};
/// let p = shackle_ir::kernels::matmul_ijk();
/// let cfg = SearchConfig { width: 25, ..Default::default() };
/// let legal = enumerate_legal(&p, &cfg);
/// let seed = vec![legal[0].shackle.clone()];
/// let product = complete_product(&p, seed, &legal);
/// assert!(shackle_core::span::unconstrained_refs(&p, &product).is_empty());
/// ```
pub fn complete_product(
    program: &Program,
    seed: Vec<Shackle>,
    candidates: &[Candidate],
) -> Vec<Shackle> {
    let deps: Vec<Dependence> = dependences(program);
    complete_product_with_deps(program, seed, candidates, &deps)
}

/// As [`complete_product`], reusing precomputed dependences. Each
/// greedy round evaluates every candidate extension in parallel over
/// [`par`] workers; the winner is the minimum of `(remaining
/// unconstrained refs, enumeration index)`, exactly the serial greedy
/// choice, so the grown product is identical at any thread count.
pub fn complete_product_with_deps(
    program: &Program,
    seed: Vec<Shackle>,
    candidates: &[Candidate],
    deps: &[Dependence],
) -> Vec<Shackle> {
    let _phase = shackle_probe::span("grow");
    let mut product = seed;
    loop {
        let open = span::unconstrained_refs(program, &product);
        if open.is_empty() {
            return product;
        }
        // The greedy winner is the minimum of `(remaining unconstrained
        // refs, enumeration index)` over *legal* extensions. The
        // geometric score needs no legality, so compute it for every
        // candidate first (in parallel), then test legality lazily in
        // ranked order: the first legal candidate IS the minimum, and
        // the expensive Theorem-1 queries run for a handful of
        // candidates instead of all of them. Every candidate extends
        // the same prefix, so its Theorem-1 context is built once per
        // round and extended per probe.
        let ranked: Vec<(usize, usize)> = {
            let mut v: Vec<(usize, usize)> = par::map(candidates, |c| {
                let mut trial = product.clone();
                trial.push(c.shackle.clone());
                span::unconstrained_refs(program, &trial).len()
            })
            .into_iter()
            .enumerate()
            .map(|(i, rem)| (rem, i))
            .filter(|&(rem, _)| rem < open.len())
            .collect();
            v.sort_unstable();
            v
        };
        let prefix = LegalityContext::new(program, &product);
        let best = ranked.into_iter().find(|&(_, i)| {
            prefix
                .extended(program, &candidates[i].shackle, product.len())
                .is_legal(deps)
        });
        match best {
            Some((_, i)) => product.push(candidates[i].shackle.clone()),
            None => return product, // no candidate helps; stop
        }
    }
}

/// Re-widen a product: the same cutting-plane normals, directions and
/// shackled references, with each factor's cuts set to the paired
/// width. This is how the grid search varies block sizes without
/// re-deriving shapes: the §6.2 observation that orientation and
/// reference choice decide *legality* while widths decide *locality*
/// means one legality check per shape covers the whole width sweep
/// (re-verified for the rescored survivors by the harnesses).
///
/// # Panics
///
/// Panics if `widths.len() != product.len()`.
pub fn reblock(program: &Program, product: &[Shackle], widths: &[i64]) -> Vec<Shackle> {
    assert_eq!(widths.len(), product.len(), "one width per product factor");
    product
        .iter()
        .zip(widths)
        .map(|(f, &w)| {
            let cuts: Vec<CutSet> = f
                .blocking()
                .cuts()
                .iter()
                .map(|c| CutSet {
                    normal: c.normal.clone(),
                    width: w,
                    direction: c.direction,
                })
                .collect();
            Shackle::new(
                program,
                Blocking::new(f.blocking().array(), cuts),
                f.refs().to_vec(),
            )
        })
        .collect()
}

/// Re-widen a product with *independent per-cut widths* (rectangular
/// blocks): `widths[f][c]` is the width of factor `f`'s cut `c`. Where
/// [`reblock`] keeps every cut of a factor at one width (square
/// blocks), this generalization lets a two-dimensional blocking use a
/// tall-and-narrow or short-and-wide block — with column-major storage
/// a cache line spans consecutive rows of one column, so the best
/// block is often not square.
///
/// # Panics
///
/// Panics unless `widths` pairs one width with every cut of every
/// factor.
pub fn reblock_cuts(program: &Program, product: &[Shackle], widths: &[Vec<i64>]) -> Vec<Shackle> {
    assert_eq!(widths.len(), product.len(), "one width list per factor");
    product
        .iter()
        .zip(widths)
        .map(|(f, ws)| {
            assert_eq!(
                ws.len(),
                f.blocking().cuts().len(),
                "one width per cut of the factor"
            );
            let cuts: Vec<CutSet> = f
                .blocking()
                .cuts()
                .iter()
                .zip(ws)
                .map(|(c, &w)| CutSet {
                    normal: c.normal.clone(),
                    width: w,
                    direction: c.direction,
                })
                .collect();
            Shackle::new(
                program,
                Blocking::new(f.blocking().array(), cuts),
                f.refs().to_vec(),
            )
        })
        .collect()
}

/// The distinct product *shapes* reachable by the automatic search:
/// every legal single shackle plus the greedy completion grown from
/// each one, deduplicated. Shapes carry the pivot width from `config`;
/// [`width_grid`] re-widens them across a sweep.
pub fn grid_shapes(program: &Program, config: &SearchConfig) -> Vec<Vec<Shackle>> {
    let deps = dependences(program);
    let legal = enumerate_legal_with_deps(program, config, &deps);
    let mut shapes: Vec<Vec<Shackle>> = Vec::new();
    for c in &legal {
        let single = vec![c.shackle.clone()];
        let product = complete_product_with_deps(program, single.clone(), &legal, &deps);
        for s in [single, product] {
            if !shapes.contains(&s) {
                shapes.push(s);
            }
        }
    }
    shapes
}

/// The dense candidate grid: every shape crossed with every width
/// combination (`widths.len().pow(factors)` per shape — per-factor
/// widths, so multi-level blockings with different inner and outer
/// block sizes are part of the space). Candidates are ordered
/// deterministically: shapes in the given order, width combinations in
/// odometer order with the *last* factor varying fastest.
pub fn width_grid(program: &Program, shapes: &[Vec<Shackle>], widths: &[i64]) -> Vec<Vec<Shackle>> {
    let mut out = Vec::new();
    for shape in shapes {
        let k = shape.len();
        let mut combo: Vec<i64> = Vec::with_capacity(k);
        grid_rec(program, shape, widths, &mut combo, &mut out);
    }
    out
}

fn grid_rec(
    program: &Program,
    shape: &[Shackle],
    widths: &[i64],
    combo: &mut Vec<i64>,
    out: &mut Vec<Vec<Shackle>>,
) {
    if combo.len() == shape.len() {
        out.push(reblock(program, shape, combo));
        return;
    }
    for &w in widths {
        combo.push(w);
        grid_rec(program, shape, widths, combo, out);
        combo.pop();
    }
}

/// The rectangular candidate grid: every shape crossed with every
/// *per-cut* width combination (`widths.len()` raised to the total cut
/// count of the shape — independent widths in every blocked dimension,
/// where [`width_grid`] keeps each factor square). Deterministic
/// odometer order with the last cut varying fastest. The square grid
/// is a subset, so a rectangular sweep can only improve on the square
/// winner; use it on shapes with few total cuts (the count is
/// exponential in them).
pub fn rect_width_grid(
    program: &Program,
    shapes: &[Vec<Shackle>],
    widths: &[i64],
) -> Vec<Vec<Shackle>> {
    let mut out = Vec::new();
    for shape in shapes {
        let cuts_per_factor: Vec<usize> = shape.iter().map(|f| f.blocking().cuts().len()).collect();
        let total: usize = cuts_per_factor.iter().sum();
        let mut flat: Vec<i64> = Vec::with_capacity(total);
        rect_rec(
            program,
            shape,
            &cuts_per_factor,
            widths,
            &mut flat,
            &mut out,
        );
    }
    out
}

fn rect_rec(
    program: &Program,
    shape: &[Shackle],
    cuts_per_factor: &[usize],
    widths: &[i64],
    flat: &mut Vec<i64>,
    out: &mut Vec<Vec<Shackle>>,
) {
    let total: usize = cuts_per_factor.iter().sum();
    if flat.len() == total {
        let mut per_factor: Vec<Vec<i64>> = Vec::with_capacity(cuts_per_factor.len());
        let mut at = 0;
        for &k in cuts_per_factor {
            per_factor.push(flat[at..at + k].to_vec());
            at += k;
        }
        out.push(reblock_cuts(program, shape, &per_factor));
        return;
    }
    for &w in widths {
        flat.push(w);
        rect_rec(program, shape, cuts_per_factor, widths, flat, out);
        flat.pop();
    }
}

/// Candidates ranked by the analytical first pass of [`two_phase`],
/// published to the probe counter `model.candidates`.
static MODEL_CANDIDATES: LazyLock<&'static shackle_probe::Counter> =
    LazyLock::new(|| shackle_probe::counter("model.candidates"));

/// Outcome of a [`two_phase`] search.
#[derive(Clone, Debug)]
pub struct TwoPhaseOutcome {
    /// Index of the winning candidate (minimum exact score among the
    /// rescored survivors; ties broken by candidate index).
    pub winner: usize,
    /// The winner's exact score.
    pub winner_score: u64,
    /// All candidate indices in model-rank order, best first (ties
    /// broken by candidate index).
    pub ranking: Vec<usize>,
    /// The first-pass score of every candidate, in candidate order.
    pub model_scores: Vec<u64>,
    /// `(candidate index, exact score)` for each rescored survivor, in
    /// model-rank order.
    pub rescored: Vec<(usize, u64)>,
}

/// Two-phase candidate selection: rank every candidate with the cheap
/// `model_score` (first pass, parallel over [`par`] workers), then
/// re-score only the `top_k` best-ranked survivors with the expensive
/// `exact_score` (second pass, also parallel, under the probe span
/// `search.topk_rescore`). Returns `None` on an empty candidate set or
/// `top_k == 0`.
///
/// Both phases break ties by candidate index, so the outcome is
/// byte-identical at any `SHACKLE_THREADS` setting. The module stays
/// cost-model-agnostic: scorers are injected (the harnesses pass
/// `shackle_model::predict` and the exact cache simulator).
pub fn two_phase<T: Sync>(
    candidates: &[T],
    top_k: usize,
    model_score: impl Fn(&T) -> u64 + Sync,
    exact_score: impl Fn(&T) -> u64 + Sync,
) -> Option<TwoPhaseOutcome> {
    if candidates.is_empty() || top_k == 0 {
        return None;
    }
    let scores = par::map(candidates, &model_score);
    if shackle_probe::enabled() {
        MODEL_CANDIDATES.add(candidates.len() as u64);
    }
    let mut ranking: Vec<usize> = (0..candidates.len()).collect();
    ranking.sort_by_key(|&i| (scores[i], i));
    let survivors: Vec<usize> = ranking.iter().copied().take(top_k).collect();
    let rescored: Vec<(usize, u64)> = {
        let _phase = shackle_probe::span("search.topk_rescore");
        let exact = par::map(&survivors, |&i| exact_score(&candidates[i]));
        survivors.into_iter().zip(exact).collect()
    };
    let &(winner, winner_score) = rescored
        .iter()
        .min_by_key(|&&(i, s)| (s, i))
        .expect("top_k >= 1 and candidates non-empty");
    Some(TwoPhaseOutcome {
        winner,
        winner_score,
        ranking,
        model_scores: scores,
        rescored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_legality_with_deps;
    use shackle_ir::kernels;

    #[test]
    fn matmul_search_finds_all_single_shackles() {
        let p = kernels::matmul_ijk();
        let legal = enumerate_legal(
            &p,
            &SearchConfig {
                width: 25,
                ..Default::default()
            },
        );
        // C, A and B each admit one reference choice, two dimension
        // orders each; all legal. Distinct shackles: 3 arrays x 2
        // orders = 6.
        assert_eq!(legal.len(), 6);
        // none is fully blocking on its own
        assert!(legal.iter().all(|c| !c.unconstrained.is_empty()));
    }

    #[test]
    fn cholesky_search_matches_manual_enumeration() {
        let p = kernels::cholesky_right();
        let legal = enumerate_legal(
            &p,
            &SearchConfig {
                width: 64,
                ..Default::default()
            },
        );
        // the §6.1 space: S1 x {A[J,J]}, S2 x {A[I,J], A[J,J]},
        // S3 x {A[L,K], A[L,J], A[K,J]}; exactly three legal, under
        // both dimension orders -> 6 candidates, 6 distinct
        assert_eq!(legal.len(), 6);
        let writes = Shackle::on_writes(&p, Blocking::square("A", 2, &[0, 1], 64));
        assert!(legal.iter().any(|c| c.shackle == writes));
    }

    #[test]
    fn complete_product_closes_matmul() {
        let p = kernels::matmul_ijk();
        let cfg = SearchConfig {
            width: 8,
            ..Default::default()
        };
        let legal = enumerate_legal(&p, &cfg);
        for c in &legal {
            let product = complete_product(&p, vec![c.shackle.clone()], &legal);
            assert!(
                span::unconstrained_refs(&p, &product).is_empty(),
                "product seeded by {} should close",
                c.shackle
            );
            assert!(product.len() <= 3, "no oversized products");
        }
    }

    #[test]
    fn complete_product_closes_cholesky() {
        let p = kernels::cholesky_right();
        let cfg = SearchConfig {
            width: 16,
            ..Default::default()
        };
        let legal = enumerate_legal(&p, &cfg);
        let writes = legal
            .iter()
            .find(|c| c.shackle.refs()[2].to_string() == "A[L, K]")
            .expect("writes shackle found");
        let product = complete_product(&p, vec![writes.shackle.clone()], &legal);
        assert!(span::unconstrained_refs(&p, &product).is_empty());
        let deps = shackle_ir::deps::dependences(&p);
        assert!(check_legality_with_deps(&p, &product, &deps).is_legal());
    }

    #[test]
    fn candidate_cap_prunes_oversized_searches() {
        let p = kernels::cholesky_right();
        let legal = enumerate_legal(
            &p,
            &SearchConfig {
                width: 16,
                max_candidates_per_array: 1, // cross product is 6 > 1
                ..Default::default()
            },
        );
        assert!(legal.is_empty());
    }

    #[test]
    fn array_filter_restricts_search() {
        let p = kernels::matmul_ijk();
        let legal = enumerate_legal(
            &p,
            &SearchConfig {
                width: 16,
                arrays: Some(vec!["C".to_string()]),
                ..Default::default()
            },
        );
        // only C's two dimension orders
        assert_eq!(legal.len(), 2);
        assert!(legal.iter().all(|c| c.shackle.blocking().array() == "C"));
    }

    #[test]
    fn reblock_preserves_shape_and_changes_widths() {
        let p = kernels::matmul_ijk();
        let cfg = SearchConfig {
            width: 8,
            ..Default::default()
        };
        let legal = enumerate_legal(&p, &cfg);
        let product = complete_product(&p, vec![legal[0].shackle.clone()], &legal);
        let re = reblock(&p, &product, &vec![16; product.len()]);
        assert_eq!(re.len(), product.len());
        for (a, b) in re.iter().zip(&product) {
            assert_eq!(a.blocking().array(), b.blocking().array());
            assert_eq!(a.refs(), b.refs());
            for (ca, cb) in a.blocking().cuts().iter().zip(b.blocking().cuts()) {
                assert_eq!(ca.normal, cb.normal);
                assert_eq!(ca.direction, cb.direction);
                assert_eq!(ca.width, 16);
                assert_eq!(cb.width, 8);
            }
        }
        // width-independence: the re-widened product is still legal
        let deps = shackle_ir::deps::dependences(&p);
        assert!(check_legality_with_deps(&p, &re, &deps).is_legal());
    }

    #[test]
    fn width_grid_is_dense_and_deterministic() {
        let p = kernels::matmul_ijk();
        let cfg = SearchConfig {
            width: 8,
            ..Default::default()
        };
        let shapes = grid_shapes(&p, &cfg);
        assert!(!shapes.is_empty());
        let widths = [4, 8, 16];
        let grid = width_grid(&p, &shapes, &widths);
        let expected: usize = shapes
            .iter()
            .map(|s| widths.len().pow(s.len() as u32))
            .sum();
        assert_eq!(grid.len(), expected);
        assert_eq!(grid, width_grid(&p, &shapes, &widths));
        // the odometer order: the first shape's candidates lead, with
        // the last factor's width varying fastest
        let w0: Vec<i64> = grid[0]
            .iter()
            .map(|f| f.blocking().cuts()[0].width)
            .collect();
        assert!(w0.iter().all(|&w| w == 4));
        let w1 = grid[1].last().unwrap().blocking().cuts()[0].width;
        assert_eq!(w1, 8);
    }

    #[test]
    fn two_phase_rescores_only_survivors_and_picks_exact_winner() {
        let candidates: Vec<u64> = vec![50, 10, 40, 20, 30];
        let rescored = std::sync::atomic::AtomicUsize::new(0);
        // model ranks by value; exact inverts the two best so the
        // rescore decides
        let out = two_phase(
            &candidates,
            2,
            |&c| c,
            |&c| {
                rescored.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if c == 10 {
                    99
                } else {
                    c
                }
            },
        )
        .unwrap();
        assert_eq!(out.ranking, vec![1, 3, 4, 2, 0]);
        assert_eq!(rescored.load(std::sync::atomic::Ordering::Relaxed), 2);
        assert_eq!(out.rescored, vec![(1, 99), (3, 20)]);
        assert_eq!(out.winner, 3);
        assert_eq!(out.winner_score, 20);
    }

    #[test]
    fn two_phase_breaks_ties_by_candidate_index() {
        let candidates = vec![7u64, 7, 7, 7];
        let out = two_phase(&candidates, 4, |&c| c, |&c| c).unwrap();
        assert_eq!(out.ranking, vec![0, 1, 2, 3]);
        assert_eq!(out.winner, 0);
        assert!(two_phase::<u64>(&[], 4, |&c| c, |&c| c).is_none());
        assert!(two_phase(&candidates, 0, |&c| c, |&c| c).is_none());
    }

    #[test]
    fn reversed_directions_double_the_candidate_space() {
        let p = kernels::matmul_ijk();
        let fwd = candidate_shackles(&p, &SearchConfig::default());
        let both = candidate_shackles(
            &p,
            &SearchConfig {
                reversed_directions: true,
                ..Default::default()
            },
        );
        assert_eq!(both.len(), 2 * fwd.len());
        // The forward space is a subset, in the same relative order.
        assert!(fwd.iter().all(|s| both.contains(s)));
        use shackle_polyhedra::lex::Direction;
        let reversed = both
            .iter()
            .filter(|s| {
                s.blocking()
                    .cuts()
                    .iter()
                    .all(|c| c.direction == Direction::Decreasing)
            })
            .count();
        assert_eq!(reversed, fwd.len());
    }

    #[test]
    fn reversed_directions_make_backsolve_reachable() {
        // The §8 example: the only legal X blocking traverses
        // bottom-to-top, invisible to the forward-only space.
        let p = kernels::backsolve();
        let fwd = enumerate_legal(
            &p,
            &SearchConfig {
                width: 8,
                arrays: Some(vec!["X".to_string()]),
                ..Default::default()
            },
        );
        assert!(fwd.is_empty(), "forward-only X blockings are all illegal");
        let both = enumerate_legal(
            &p,
            &SearchConfig {
                width: 8,
                arrays: Some(vec!["X".to_string()]),
                reversed_directions: true,
                ..Default::default()
            },
        );
        assert!(!both.is_empty(), "the reversed X blocking is legal");
        use shackle_polyhedra::lex::Direction;
        assert!(both
            .iter()
            .all(|c| c.shackle.blocking().cuts()[0].direction == Direction::Decreasing));
    }

    #[test]
    fn rect_width_grid_covers_independent_per_cut_widths() {
        let p = kernels::matmul_ijk();
        let cfg = SearchConfig {
            width: 8,
            arrays: Some(vec!["C".to_string()]),
            ..Default::default()
        };
        let legal = enumerate_legal(&p, &cfg);
        let shapes: Vec<Vec<Shackle>> = legal.iter().map(|c| vec![c.shackle.clone()]).collect();
        let widths = [4, 8, 16];
        let rect = rect_width_grid(&p, &shapes, &widths);
        // one factor with two cuts: widths^2 combos per shape
        assert_eq!(rect.len(), shapes.len() * widths.len().pow(2));
        assert_eq!(rect, rect_width_grid(&p, &shapes, &widths));
        // the square grid is a subset
        let square = width_grid(&p, &shapes, &widths);
        for s in &square {
            assert!(rect.contains(s));
        }
        // genuinely rectangular combos appear, and stay legal
        let deps = shackle_ir::deps::dependences(&p);
        let rectangular: Vec<&Vec<Shackle>> = rect
            .iter()
            .filter(|c| {
                let cuts = c[0].blocking().cuts();
                cuts[0].width != cuts[1].width
            })
            .collect();
        assert_eq!(
            rectangular.len(),
            shapes.len() * (widths.len().pow(2) - widths.len())
        );
        assert!(check_legality_with_deps(&p, rectangular[0], &deps).is_legal());
        // odometer order: last cut fastest
        let first: Vec<i64> = rect[0][0]
            .blocking()
            .cuts()
            .iter()
            .map(|c| c.width)
            .collect();
        let second: Vec<i64> = rect[1][0]
            .blocking()
            .cuts()
            .iter()
            .map(|c| c.width)
            .collect();
        assert_eq!(first, vec![4, 4]);
        assert_eq!(second, vec![4, 8]);
    }

    #[test]
    fn reblock_cuts_panics_on_width_count_mismatch() {
        let p = kernels::matmul_ijk();
        let legal = enumerate_legal(
            &p,
            &SearchConfig {
                width: 8,
                arrays: Some(vec!["C".to_string()]),
                ..Default::default()
            },
        );
        let shape = vec![legal[0].shackle.clone()];
        let out = std::panic::catch_unwind(|| reblock_cuts(&p, &shape, &[vec![4]]));
        assert!(out.is_err(), "two cuts need two widths");
    }

    #[test]
    fn search_skips_arrays_without_references_in_every_statement() {
        // QR's A-array search is skipped automatically because S1/S4/S6
        // do not reference A (they need dummies); T and W likewise
        let p = kernels::qr_householder();
        let legal = enumerate_legal(&p, &SearchConfig::default());
        assert!(legal.is_empty());
    }
}
