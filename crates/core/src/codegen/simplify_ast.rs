//! Post-codegen AST cleanup: degenerate-loop elimination and constant
//! guard folding.
//!
//! A loop `do v = e .. e` runs exactly once with `v = e`; substituting
//! `e` for `v` in its body and splicing the body in place is what turns
//! the scanner's output for the ADI kernel (blocked 1×1) into the
//! fused-and-interchanged loop nest of the paper's Figure 14(ii).

use shackle_ir::{Bound, Node, Program, Statement};
use shackle_polyhedra::LinExpr;

/// Simplify a program's loop tree; statements may be rewritten (their
/// subscripts inherit substituted loop variables).
pub fn simplify_program(p: &Program) -> Program {
    let mut stmts = p.stmts().to_vec();
    let body = simplify_nodes(p.body(), &mut stmts);
    Program::new(
        p.name().to_string(),
        p.params().to_vec(),
        p.arrays().to_vec(),
        stmts,
        body,
    )
}

fn simplify_nodes(nodes: &[Node], stmts: &mut Vec<Statement>) -> Vec<Node> {
    let mut out = Vec::new();
    for n in nodes {
        match n {
            Node::Stmt(id) => out.push(Node::Stmt(*id)),
            Node::If(cs, body) => {
                let body = simplify_nodes(body, stmts);
                if body.is_empty() {
                    continue;
                }
                // fold constant conditions
                let mut kept = Vec::new();
                let mut dead = false;
                for c in cs {
                    match c.constant_truth() {
                        Some(true) => {}
                        Some(false) => {
                            dead = true;
                            break;
                        }
                        None => kept.push(c.clone()),
                    }
                }
                if dead {
                    continue;
                }
                if kept.is_empty() {
                    out.extend(body);
                } else {
                    out.push(Node::If(kept, body));
                }
            }
            Node::Loop(l) => {
                let body = simplify_nodes(&l.body, stmts);
                if body.is_empty() {
                    continue;
                }
                if let Some(e) = degenerate_value(&l.lower, &l.upper) {
                    out.extend(substitute_nodes(&body, &l.var, &e, stmts));
                } else {
                    let mut l2 = (**l).clone();
                    l2.body = body;
                    out.push(Node::Loop(Box::new(l2)));
                }
            }
        }
    }
    out
}

/// If the loop runs exactly once with a closed-form affine value,
/// return that value.
fn degenerate_value(lower: &Bound, upper: &Bound) -> Option<LinExpr> {
    if lower.terms.len() == 1
        && upper.terms.len() == 1
        && lower.terms[0].div == 1
        && upper.terms[0].div == 1
        && lower.terms[0].expr == upper.terms[0].expr
    {
        Some(lower.terms[0].expr.clone())
    } else {
        None
    }
}

fn substitute_nodes(
    nodes: &[Node],
    var: &str,
    e: &LinExpr,
    stmts: &mut Vec<Statement>,
) -> Vec<Node> {
    nodes
        .iter()
        .map(|n| match n {
            Node::Stmt(id) => {
                stmts[*id] = stmts[*id].substitute(var, e);
                Node::Stmt(*id)
            }
            Node::If(cs, body) => Node::If(
                cs.iter().map(|c| c.substitute(var, e)).collect(),
                substitute_nodes(body, var, e, stmts),
            ),
            Node::Loop(l) => {
                let mut l2 = (**l).clone();
                for t in l2.lower.terms.iter_mut().chain(l2.upper.terms.iter_mut()) {
                    t.expr = t.expr.substitute(var, e);
                }
                // an inner loop re-binding the same name shadows it
                if l2.var != var {
                    l2.body = substitute_nodes(&l.body, var, e, stmts);
                }
                Node::Loop(Box::new(l2))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shackle_ir::{loop_, stmt, ArrayDecl, ArrayRef, ScalarExpr};
    use shackle_polyhedra::Constraint;

    fn n() -> LinExpr {
        LinExpr::var("N")
    }

    fn simple_program(body: Vec<Node>, stmts: Vec<Statement>) -> Program {
        Program::new(
            "t",
            vec!["N".into()],
            vec![ArrayDecl::square("A", "N")],
            stmts,
            body,
        )
    }

    #[test]
    fn degenerate_loop_substituted() {
        // do i = k+1 .. k+1 { A[i, k] = A[i, k] } with k an outer loop
        let a = ArrayRef::vars("A", &["i", "k"]);
        let s = Statement::new("S", a.clone(), ScalarExpr::from(a));
        let body = vec![loop_(
            "k",
            LinExpr::constant(1),
            n(),
            vec![loop_(
                "i",
                LinExpr::var("k") + LinExpr::constant(1),
                LinExpr::var("k") + LinExpr::constant(1),
                vec![stmt(0)],
            )],
        )];
        let p = simple_program(body, vec![s]);
        let q = simplify_program(&p);
        let text = q.to_string();
        assert!(!text.contains("do i"), "{text}");
        assert!(text.contains("A[k + 1, k]"), "{text}");
    }

    #[test]
    fn constant_guards_folded() {
        let a = ArrayRef::vars("A", &["i", "i"]);
        let s = Statement::new("S", a.clone(), ScalarExpr::from(a));
        let body = vec![loop_(
            "i",
            LinExpr::constant(1),
            n(),
            vec![Node::If(
                vec![Constraint::geq_zero(LinExpr::constant(3))],
                vec![stmt(0)],
            )],
        )];
        let p = simple_program(body, vec![s]);
        let q = simplify_program(&p);
        assert!(!q.to_string().contains("if"), "{}", q);
    }

    #[test]
    fn dead_guard_removes_statement_region() {
        let a = ArrayRef::vars("A", &["i", "i"]);
        let s0 = Statement::new("S0", a.clone(), ScalarExpr::from(a.clone()));
        let body = vec![loop_(
            "i",
            LinExpr::constant(1),
            n(),
            vec![Node::If(
                vec![Constraint::geq_zero(LinExpr::constant(-1))],
                vec![stmt(0)],
            )],
        )];
        // validation requires each stmt exactly once *before*
        // simplification; afterwards the statement body is dropped, so
        // construct directly and only check the node transformation.
        let mut stmts = vec![s0];
        let out = simplify_nodes(&body, &mut stmts);
        assert!(out.is_empty());
    }

    #[test]
    fn shadowed_variable_not_substituted() {
        let a = ArrayRef::vars("A", &["x", "x"]);
        let s = Statement::new("S", a.clone(), ScalarExpr::from(a));
        // do x = 5..5 { do x = 1..N { S } } — inner x shadows
        let body = vec![loop_(
            "x",
            LinExpr::constant(5),
            LinExpr::constant(5),
            vec![loop_("x", LinExpr::constant(1), n(), vec![stmt(0)])],
        )];
        let mut stmts = vec![s];
        let out = simplify_nodes(&body, &mut stmts);
        // outer eliminated, inner loop kept, subscripts still use x
        assert_eq!(out.len(), 1);
        assert!(stmts[0].to_string().contains("A[x, x]"));
    }
}
