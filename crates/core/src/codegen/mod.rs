//! Code generation from shackle products.
//!
//! Two generators, mirroring the paper's presentation:
//!
//! * [`naive::generate_naive`] — the Figure 5 form: loops over block
//!   coordinates around the *original* loop tree, with a
//!   block-membership guard on every statement. "Obtained directly from
//!   the specification of the data shackle without any use of polyhedral
//!   algebra tools" — trivially correct, and the executable semantics of
//!   record.
//! * [`scan::generate_scanned`] — the Figure 6/7 form: a polyhedral
//!   scanner that produces simplified imperfectly nested loops by
//!   projecting each statement's instance set level by level,
//!   separating statements into disjoint index ranges, and dropping
//!   guards implied by the loop bounds. This plays the role of the
//!   Omega-calculator simplification in the paper.
//!
//! Both return a new [`Program`] whose execution order is: blocks in
//! lexicographic coordinate order; within a block, original program
//! order.

pub mod naive;
pub mod scan;
pub mod simplify_ast;

use crate::Shackle;
use shackle_ir::Program;
use std::collections::BTreeSet;

/// Flattened block-coordinate variable names for a shackle product:
/// `b1, b2, …` outermost-first (factor-major, cut-minor), uniquified
/// against every name already used by the program.
pub(crate) fn block_var_names(program: &Program, factors: &[Shackle]) -> Vec<String> {
    let mut used: BTreeSet<String> = program.params().iter().cloned().collect();
    fn walk(nodes: &[shackle_ir::Node], used: &mut BTreeSet<String>) {
        for n in nodes {
            match n {
                shackle_ir::Node::Loop(l) => {
                    used.insert(l.var.clone());
                    walk(&l.body, used);
                }
                shackle_ir::Node::If(_, b) => walk(b, used),
                shackle_ir::Node::Stmt(_) => {}
            }
        }
    }
    walk(program.body(), &mut used);
    let total: usize = factors.iter().map(Shackle::coord_count).sum();
    let mut names = Vec::with_capacity(total);
    let mut k = 1;
    for _ in 0..total {
        let mut name = format!("b{k}");
        while used.contains(&name) {
            k += 1;
            name = format!("b{k}");
        }
        used.insert(name.clone());
        names.push(name);
        k += 1;
    }
    names
}

/// Split flattened block variable names back into per-factor slices.
pub(crate) fn per_factor<'a>(names: &'a [String], factors: &[Shackle]) -> Vec<&'a [String]> {
    let mut out = Vec::with_capacity(factors.len());
    let mut at = 0;
    for f in factors {
        out.push(&names[at..at + f.coord_count()]);
        at += f.coord_count();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Blocking;
    use shackle_ir::kernels;

    #[test]
    fn names_avoid_collisions() {
        let p = kernels::matmul_ijk();
        let f = vec![
            Shackle::on_writes(&p, Blocking::square("C", 2, &[0, 1], 25)),
            Shackle::new(
                &p,
                Blocking::square("A", 2, &[0, 1], 25),
                vec![shackle_ir::ArrayRef::vars("A", &["I", "K"])],
            ),
        ];
        let names = block_var_names(&p, &f);
        assert_eq!(names.len(), 4);
        let uniq: BTreeSet<&String> = names.iter().collect();
        assert_eq!(uniq.len(), 4);
        let pf = per_factor(&names, &f);
        assert_eq!(pf.len(), 2);
        assert_eq!(pf[0].len(), 2);
    }
}
