//! The Figure 5 generator: block loops + original tree + membership
//! guards.

use crate::codegen::{block_var_names, per_factor};
use crate::Shackle;
use shackle_ir::{loop_b, Node, Program, StmtId};
use shackle_polyhedra::Constraint;

/// Generate the naive shackled form of `program` under the given shackle
/// product.
///
/// Structure: one loop per block coordinate (lexicographic order,
/// outermost first), then the original loop tree with every statement
/// wrapped in an `if` testing that its shackled references (one per
/// factor) fall in the current blocks — exactly the paper's Figure 5.
///
/// This form is always semantically faithful to the shackle
/// specification; the scanner ([`super::scan::generate_scanned`])
/// produces equivalent but simplified code.
///
/// # Panics
///
/// Panics if `factors` is empty or a blocking is not axis-aligned
/// (a code-generation restriction; legality has no such limit).
///
/// # Examples
///
/// ```
/// use shackle_core::{naive::generate_naive, Blocking, Shackle};
/// use shackle_ir::kernels;
/// let p = kernels::matmul_ijk();
/// let s = Shackle::on_writes(&p, Blocking::square("C", 2, &[0, 1], 25));
/// let blocked = generate_naive(&p, &[s]);
/// let text = blocked.to_string();
/// assert!(text.contains("do b1"));
/// assert!(text.contains("if"));
/// ```
pub fn generate_naive(program: &Program, factors: &[Shackle]) -> Program {
    assert!(!factors.is_empty(), "need at least one shackle");
    let names = block_var_names(program, factors);
    let slices = per_factor(&names, factors);

    // per-statement guards: membership of each shackled ref in each
    // factor's current block
    let guards: Vec<Vec<Constraint>> = (0..program.stmts().len())
        .map(|id| {
            factors
                .iter()
                .zip(&slices)
                .flat_map(|(f, zs)| f.tie_for(id, zs, &|_| None))
                .collect()
        })
        .collect();

    fn wrap(nodes: &[Node], guards: &[Vec<Constraint>]) -> Vec<Node> {
        nodes
            .iter()
            .map(|n| match n {
                Node::Stmt(id) => Node::If(guards[*id].clone(), vec![Node::Stmt(*id)]),
                Node::Loop(l) => {
                    let mut l2 = (**l).clone();
                    l2.body = wrap(&l.body, guards);
                    Node::Loop(Box::new(l2))
                }
                Node::If(cs, b) => Node::If(cs.clone(), wrap(b, guards)),
            })
            .collect()
    }

    let mut body = wrap(program.body(), &guards);

    // block loops, innermost (last coordinate) built first
    let mut flat: Vec<(usize, usize)> = Vec::new(); // (factor, cut)
    for (fi, f) in factors.iter().enumerate() {
        for k in 0..f.coord_count() {
            flat.push((fi, k));
        }
    }
    let _ = program.stmts().len() as StmtId;
    for (idx, (fi, k)) in flat.iter().enumerate().rev() {
        let (lower, upper) = factors[*fi].blocking().coord_bounds(*k, program);
        body = vec![loop_b(names[idx].clone(), lower, upper, body)];
    }

    program
        .with_body(body)
        .with_name(format!("{}-shackled-naive", program.name()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Blocking;
    use shackle_ir::kernels;

    #[test]
    fn matmul_naive_matches_fig5_shape() {
        let p = kernels::matmul_ijk();
        let s = Shackle::on_writes(&p, Blocking::square("C", 2, &[0, 1], 25));
        let g = generate_naive(&p, &[s]);
        let text = g.to_string();
        // two block loops with ceil(N/25) upper bound, original I-J-K
        // loops, and a guard mentioning both block coordinates
        assert!(text.contains("do b1 = 1 .. floord(N + 24, 25)"), "{text}");
        assert!(text.contains("do b2 = 1 .. floord(N + 24, 25)"), "{text}");
        assert!(text.contains("do I = 1 .. N"));
        assert!(text.contains("do K = 1 .. N"));
        assert!(text.contains("if ("));
        assert!(text.contains("b1"));
    }

    #[test]
    fn cholesky_naive_preserves_statement_count() {
        let p = kernels::cholesky_right();
        let s = Shackle::on_writes(&p, Blocking::square("A", 2, &[1, 0], 64));
        let g = generate_naive(&p, &[s]);
        assert_eq!(g.stmts().len(), 3);
        assert_eq!(g.stmt_order().len(), 3);
    }

    #[test]
    fn product_adds_more_block_loops() {
        let p = kernels::matmul_ijk();
        let sc = Shackle::on_writes(&p, Blocking::square("C", 2, &[0, 1], 25));
        let sa = Shackle::new(
            &p,
            Blocking::square("A", 2, &[0, 1], 25),
            vec![shackle_ir::ArrayRef::vars("A", &["I", "K"])],
        );
        let g = generate_naive(&p, &[sc, sa]);
        let text = g.to_string();
        for b in ["b1", "b2", "b3", "b4"] {
            assert!(text.contains(&format!("do {b}")), "missing {b}:\n{text}");
        }
    }
}
