//! The polyhedra scanner: simplified shackled code (Figures 6, 7, 10,
//! 14(ii) of the paper).
//!
//! For every statement we form its *shackled instance polyhedron* over
//! `(block coordinates, loop variables)`: the iteration domain conjoined
//! with the constraints tying each factor's block coordinates to the
//! data its shackled reference touches. The scanner then emits loops
//! dimension by dimension:
//!
//! 1. the block coordinates, outermost, in lexicographic order;
//! 2. the original program's `2d+1` schedule — textual positions group
//!    and order statements, loop dimensions get real loops.
//!
//! At every loop dimension, statements are *separated* into disjoint
//! pieces of the dimension's range (Quilleré-style intersection /
//! difference), pieces are ordered by a pairwise Omega-test query, and
//! each piece gets exact loop bounds derived from its projected system —
//! this is what turns the paper's guarded Figure 5 into the
//! index-set-split Figure 7 with its four sections.

use crate::codegen::{block_var_names, per_factor, simplify_ast};
use crate::Shackle;
use shackle_ir::schedule::SchedElem;
use shackle_ir::{loop_b, Bound, BoundTerm, Node, Program, Statement, StmtId};
use shackle_polyhedra::{Constraint, System};

/// A maximal set of statements sharing one contiguous region of the
/// current dimension.
#[derive(Clone, Debug)]
struct Piece {
    dom: System,
    stmts: Vec<StmtId>,
}

/// Generate simplified shackled code for `program` under the shackle
/// product `factors`.
///
/// The result executes blocks in lexicographic coordinate order and,
/// within each block, the shackled statement instances in original
/// program order — the semantics of Definition 1 — but with membership
/// guards turned into loop bounds and index-set splits. Degenerate
/// single-iteration loops are eliminated by substitution (this is how
/// the ADI example's 1×1 blocking turns into the fused/interchanged
/// Figure 14(ii)).
///
/// # Panics
///
/// Panics if `factors` is empty, if a blocking is not axis-aligned, or
/// if a projection required by the scanner is not exact over the
/// integers (cannot happen for unit-coefficient subscripts; use
/// [`crate::naive::generate_naive`] for such programs).
///
/// # Examples
///
/// ```
/// use shackle_core::{scan::generate_scanned, Blocking, Shackle};
/// use shackle_ir::kernels;
/// let p = kernels::matmul_ijk();
/// let s = Shackle::on_writes(&p, Blocking::square("C", 2, &[0, 1], 25));
/// let code = generate_scanned(&p, &[s]);
/// // Figure 6: block loops with ceil(N/25) trip counts, no guards
/// assert!(code.to_string().contains("floord(N + 24, 25)"));
/// assert!(!code.to_string().contains("if ("));
/// ```
pub fn generate_scanned(program: &Program, factors: &[Shackle]) -> Program {
    let _phase = shackle_probe::span("codegen");
    shackle_probe::add("core.codegen_programs", 1);
    assert!(!factors.is_empty(), "need at least one shackle");
    for f in factors {
        for k in 0..f.coord_count() {
            // validates axis-alignment eagerly
            let _ = f.blocking().coord_bounds(k, program);
        }
    }
    let names = block_var_names(program, factors);
    let slices = per_factor(&names, factors);

    let mut full = Vec::with_capacity(program.stmts().len());
    let mut scheds = Vec::with_capacity(program.stmts().len());
    for id in 0..program.stmts().len() {
        let ctx = program.context(id);
        let mut sys = ctx.domain();
        for (f, zs) in factors.iter().zip(&slices) {
            sys.add_all(f.tie_for(id, zs, &|_| None));
        }
        full.push(sys);
        scheds.push(ctx.schedule.clone());
    }

    let mut scanner = Scanner {
        program,
        params: program.params().to_vec(),
        block_vars: names.clone(),
        full,
        scheds,
        new_stmts: Vec::new(),
    };
    let all: Vec<StmtId> = (0..program.stmts().len()).collect();
    let body = scanner.gen_block(&all, 0, &mut Vec::new(), &System::new());
    let out = Program::new(
        format!("{}-shackled", program.name()),
        program.params().to_vec(),
        program.arrays().to_vec(),
        scanner.new_stmts,
        body,
    );
    simplify_ast::simplify_program(&out)
}

struct Scanner<'a> {
    program: &'a Program,
    params: Vec<String>,
    block_vars: Vec<String>,
    full: Vec<System>,
    scheds: Vec<Vec<SchedElem>>,
    new_stmts: Vec<Statement>,
}

impl Scanner<'_> {
    /// Project statement `id`'s full system onto `outer ∪ {d} ∪ params`.
    fn project(&self, id: StmtId, outer: &[String], d: &str) -> System {
        let mut keep: Vec<&str> = outer.iter().map(String::as_str).collect();
        keep.push(d);
        keep.extend(self.params.iter().map(String::as_str));
        let (proj, exact) = self.full[id].project_onto(&keep);
        assert!(
            exact,
            "inexact projection for {} at dimension {d}; the scanner \
             requires unit-coefficient subscripts — use the naive generator",
            self.program.stmts()[id].label()
        );
        proj
    }

    /// Emit code for block-coordinate dimensions `dim..`, then the
    /// schedule.
    fn gen_block(
        &mut self,
        stmts: &[StmtId],
        dim: usize,
        outer: &mut Vec<String>,
        context: &System,
    ) -> Vec<Node> {
        if dim == self.block_vars.len() {
            return self.gen_sched(stmts, 0, outer, context);
        }
        let d = self.block_vars[dim].clone();
        self.gen_loop_dim(stmts, &d, context, outer, &mut |me, set, outer, ctx| {
            me.gen_block(set, dim + 1, outer, ctx)
        })
    }

    /// Emit code for schedule positions `pos..` (all block dims done).
    fn gen_sched(
        &mut self,
        stmts: &[StmtId],
        pos: usize,
        outer: &mut Vec<String>,
        context: &System,
    ) -> Vec<Node> {
        // group by textual position
        let mut groups: Vec<(usize, Vec<StmtId>)> = Vec::new();
        for &s in stmts {
            let SchedElem::Text(k) = self.scheds[s][pos] else {
                panic!("schedule of {s} should have Text at position {pos}");
            };
            match groups.iter_mut().find(|(g, _)| *g == k) {
                Some((_, v)) => v.push(s),
                None => groups.push((k, vec![s])),
            }
        }
        groups.sort_by_key(|(k, _)| *k);

        let mut out = Vec::new();
        for (_, group) in groups {
            let leaf = self.scheds[group[0]].len() == pos + 1;
            if leaf {
                assert_eq!(
                    group.len(),
                    1,
                    "two statements cannot share a leaf position"
                );
                out.extend(self.emit_leaf(group[0], context));
                continue;
            }
            // A guard (`If`) node introduces a textual level with no
            // loop variable: the schedule continues with another Text.
            // Its constraints are already part of the statement domains,
            // so simply descend a schedule level.
            if matches!(self.scheds[group[0]][pos + 1], SchedElem::Text(_)) {
                for &s in &group {
                    assert!(
                        matches!(self.scheds[s][pos + 1], SchedElem::Text(_)),
                        "statements in one textual group must agree on nesting"
                    );
                }
                out.extend(self.gen_sched(&group, pos + 1, outer, context));
                continue;
            }
            // all group members continue with the same loop variable
            let var = match &self.scheds[group[0]][pos + 1] {
                SchedElem::Var(v) => v.clone(),
                SchedElem::Text(_) => unreachable!(),
            };
            for &s in &group {
                assert_eq!(
                    self.scheds[s][pos + 1],
                    SchedElem::Var(var.clone()),
                    "statements in one textual group must share their loop"
                );
            }
            out.extend(self.gen_loop_dim(
                &group,
                &var,
                context,
                outer,
                &mut |me, set, outer, ctx| me.gen_sched(set, pos + 2, outer, ctx),
            ));
        }
        out
    }

    /// Shared machinery for one loop dimension `d`: project, separate,
    /// order, derive bounds, recurse via `rec`.
    #[allow(clippy::type_complexity)]
    fn gen_loop_dim(
        &mut self,
        stmts: &[StmtId],
        d: &str,
        context: &System,
        outer: &mut Vec<String>,
        rec: &mut dyn FnMut(&mut Self, &[StmtId], &mut Vec<String>, &System) -> Vec<Node>,
    ) -> Vec<Node> {
        let items: Vec<(StmtId, System)> = stmts
            .iter()
            .map(|&s| (s, self.project(s, outer, d)))
            .filter(|(_, q)| context.and(q).is_integer_feasible())
            .collect();
        if items.is_empty() {
            return Vec::new();
        }
        let pieces = separate(&items, context);
        let ordered = order_pieces(pieces, context, d);

        let mut out = Vec::new();
        for piece in ordered {
            let pruned = piece.dom.gist(context);
            let (lower, upper, guards) = extract_bounds(&pruned, d);
            let new_ctx = context.and(&piece.dom);
            outer.push(d.to_string());
            let body = rec(self, &piece.stmts, outer, &new_ctx);
            outer.pop();
            if body.is_empty() {
                continue;
            }
            let node = loop_b(d.to_string(), lower, upper, body);
            if guards.is_empty() {
                out.push(node);
            } else {
                out.push(Node::If(guards, vec![node]));
            }
        }
        out
    }

    fn emit_leaf(&mut self, id: StmtId, context: &System) -> Vec<Node> {
        // Sorted for engine-independent output (see `extract_bounds`).
        let mut guards = self.full[id].gist(context).constraints();
        guards.sort_by_cached_key(|c| c.to_string());
        guards.dedup();
        let new_id = self.new_stmts.len();
        self.new_stmts.push(self.program.stmts()[id].clone());
        let node = Node::Stmt(new_id);
        if guards.is_empty() {
            vec![node]
        } else {
            vec![Node::If(guards, vec![node])]
        }
    }
}

/// Split statements' projected ranges into disjoint pieces, each tagged
/// with the statements alive on it.
fn separate(items: &[(StmtId, System)], context: &System) -> Vec<Piece> {
    let mut pieces: Vec<Piece> = Vec::new();
    for (id, q) in items {
        let mut next: Vec<Piece> = Vec::new();
        let mut leftover: Vec<System> = vec![q.clone()];
        for piece in pieces {
            let inter = piece.dom.and(q);
            if context.and(&inter).is_integer_feasible() {
                let mut stmts = piece.stmts.clone();
                stmts.push(*id);
                next.push(Piece { dom: inter, stmts });
                for part in subtract(&piece.dom, q, context) {
                    next.push(Piece {
                        dom: part,
                        stmts: piece.stmts.clone(),
                    });
                }
                leftover = leftover
                    .iter()
                    .flat_map(|l| subtract(l, &piece.dom, context))
                    .collect();
            } else {
                next.push(piece);
            }
        }
        for l in leftover {
            if context.and(&l).is_integer_feasible() {
                next.push(Piece {
                    dom: l,
                    stmts: vec![*id],
                });
            }
        }
        pieces = next;
    }
    pieces
}

/// Disjoint decomposition of `a ∧ ¬b` (relative to `context`).
fn subtract(a: &System, b: &System, context: &System) -> Vec<System> {
    let relevant = b.gist(&context.and(a));
    let mut out = Vec::new();
    let mut prefix = a.clone();
    for c in relevant.constraints() {
        for neg in c.negate() {
            let mut piece = prefix.clone();
            piece.add(neg);
            if context.and(&piece).is_integer_feasible() {
                out.push(piece);
            }
        }
        prefix.add(c);
    }
    out
}

/// Can some point of `a` come strictly after some point of `b` along
/// dimension `d` (with identical outer coordinates)?
fn comes_after(a: &System, b: &System, context: &System, d: &str) -> bool {
    let mut sa = a.clone();
    sa.rename_var(d, "ord$x");
    let mut sb = b.clone();
    sb.rename_var(d, "ord$y");
    let mut sys = context.and(&sa).and(&sb);
    sys.add(Constraint::gt(
        shackle_polyhedra::LinExpr::var("ord$x"),
        shackle_polyhedra::LinExpr::var("ord$y"),
    ));
    sys.is_integer_feasible()
}

/// Order pieces along `d`; mutually interleaved pieces are merged into a
/// single piece whose domain is the common implied hull (correct but
/// less separated — deeper levels and leaf guards recover exactness).
fn order_pieces(mut pieces: Vec<Piece>, context: &System, d: &str) -> Vec<Piece> {
    let mut out = Vec::new();
    'outer: while !pieces.is_empty() {
        for i in 0..pieces.len() {
            let first_ok = (0..pieces.len())
                .all(|j| j == i || !comes_after(&pieces[i].dom, &pieces[j].dom, context, d));
            if first_ok {
                out.push(pieces.remove(i));
                continue 'outer;
            }
        }
        // no piece can be first: merge an interleaved pair
        let (i, j) = find_conflict(&pieces, context, d);
        let merged = merge(&pieces[i], &pieces[j], context);
        let keep_j = pieces.swap_remove(j.max(i));
        let _ = keep_j;
        pieces.swap_remove(j.min(i));
        pieces.push(merged);
    }
    out
}

fn find_conflict(pieces: &[Piece], context: &System, d: &str) -> (usize, usize) {
    for i in 0..pieces.len() {
        for j in i + 1..pieces.len() {
            if comes_after(&pieces[i].dom, &pieces[j].dom, context, d)
                && comes_after(&pieces[j].dom, &pieces[i].dom, context, d)
            {
                return (i, j);
            }
        }
    }
    panic!("order_pieces: no first piece but no mutual conflict either");
}

fn merge(a: &Piece, b: &Piece, context: &System) -> Piece {
    // Candidate constraints: the textual constraints of both pieces plus
    // each piece's per-variable marginal bounds (projection onto one
    // variable at a time). The marginals matter: pieces like `d = x` and
    // `d = 10 − x` share no textual constraint on `d`, yet both imply
    // `1 ≤ d ≤ 9`, which the merged piece needs to remain a boundable
    // loop range. Every candidate is still checked for implication by
    // *both* pieces, so the merge stays sound.
    let mut candidates: Vec<Constraint> = Vec::new();
    for dom in [&a.dom, &b.dom] {
        candidates.extend(dom.constraints());
        for v in dom.used_vars() {
            let (marginal, _) = dom.project_onto(&[v.as_str()]);
            candidates.extend(marginal.constraints());
        }
    }
    let mut kept = Vec::new();
    for c in candidates {
        let in_a = shackle_polyhedra::simplify::implies(&context.and(&a.dom), &c);
        let in_b = shackle_polyhedra::simplify::implies(&context.and(&b.dom), &c);
        if in_a && in_b && !kept.contains(&c) {
            kept.push(c);
        }
    }
    let mut stmts = a.stmts.clone();
    for s in &b.stmts {
        if !stmts.contains(s) {
            stmts.push(*s);
        }
    }
    stmts.sort_unstable();
    Piece {
        dom: System::from_constraints(kept),
        stmts,
    }
}

/// Turn the constraints of `dom` involving `d` into loop bounds; the
/// rest become guards hoisted outside the loop.
fn extract_bounds(dom: &System, d: &str) -> (Bound, Bound, Vec<Constraint>) {
    let mut lowers = Vec::new();
    let mut uppers = Vec::new();
    let mut guards = Vec::new();
    for con in dom.constraints() {
        let c = con.expr().coeff(d);
        if c == 0 {
            guards.push(con);
            continue;
        }
        let mut rest = con.expr().clone();
        rest.add_term(d, -c);
        match (con.is_eq(), c > 0) {
            (false, true) => {
                // c*d + rest >= 0  →  d >= ceil(-rest / c)
                lowers.push(BoundTerm::div(-rest, c));
            }
            (false, false) => {
                // c*d + rest >= 0, c < 0  →  (-c)*d <= rest
                uppers.push(BoundTerm::div(rest, -c));
            }
            (true, true) => {
                lowers.push(BoundTerm::div(-rest.clone(), c));
                uppers.push(BoundTerm::div(-rest, c));
            }
            (true, false) => {
                lowers.push(BoundTerm::div(rest.clone(), -c));
                uppers.push(BoundTerm::div(rest, -c));
            }
        }
    }
    assert!(
        !lowers.is_empty() && !uppers.is_empty(),
        "loop dimension {d} is unbounded in {dom}"
    );
    // Canonical order: the emitted text must not depend on the internal
    // row order of `dom`, which varies with the engine's redundant-row
    // pruning (`shackle_polyhedra::cache::set_cache_enabled`). Sorting
    // by rendered form (then deduping) makes the generated program a
    // function of the polyhedron alone.
    let canon = |terms: &mut Vec<BoundTerm>| {
        terms.sort_by_cached_key(|t| (t.div, t.expr.to_string()));
        terms.dedup();
    };
    canon(&mut lowers);
    canon(&mut uppers);
    guards.sort_by_cached_key(|c: &Constraint| c.to_string());
    guards.dedup();
    (Bound::new(lowers), Bound::new(uppers), guards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Blocking;
    use shackle_ir::kernels;
    use shackle_polyhedra::LinExpr;

    fn sys(cs: Vec<Constraint>) -> System {
        System::from_constraints(cs)
    }

    #[test]
    fn subtract_splits_range() {
        // a: 1 <= d <= 10; b: 4 <= d <= 6 → pieces [1,3] and [7,10]
        let d = || LinExpr::var("d");
        let a = sys(vec![
            Constraint::ge(d(), LinExpr::constant(1)),
            Constraint::le(d(), LinExpr::constant(10)),
        ]);
        let b = sys(vec![
            Constraint::ge(d(), LinExpr::constant(4)),
            Constraint::le(d(), LinExpr::constant(6)),
        ]);
        let parts = subtract(&a, &b, &System::new());
        assert_eq!(parts.len(), 2);
        let total: usize = parts.iter().map(|p| p.enumerate_box(0, 12).len()).sum();
        assert_eq!(total, 7); // {1,2,3} ∪ {7..10}
    }

    #[test]
    fn separate_two_overlapping_statements() {
        // S0 on [1,6], S1 on [4,10] → [1,3]{0}, [4,6]{0,1}, [7,10]{1}
        let d = || LinExpr::var("d");
        let q0 = sys(vec![
            Constraint::ge(d(), LinExpr::constant(1)),
            Constraint::le(d(), LinExpr::constant(6)),
        ]);
        let q1 = sys(vec![
            Constraint::ge(d(), LinExpr::constant(4)),
            Constraint::le(d(), LinExpr::constant(10)),
        ]);
        let pieces = separate(&[(0, q0), (1, q1)], &System::new());
        assert_eq!(pieces.len(), 3);
        let ordered = order_pieces(pieces, &System::new(), "d");
        let sets: Vec<Vec<StmtId>> = ordered.iter().map(|p| p.stmts.clone()).collect();
        assert_eq!(sets, vec![vec![0], vec![0, 1], vec![1]]);
    }

    #[test]
    fn extract_bounds_divides() {
        // 25b - 24 <= d <= 25b becomes lower ceil((25b-24)/1)… here test
        // a non-unit coefficient on d via 2d >= n (d >= ceil(n/2))
        let dd = LinExpr::var("d");
        let s = sys(vec![
            Constraint::geq_zero(dd.clone() * 2 - LinExpr::var("n")),
            Constraint::le(dd, LinExpr::constant(50)),
        ]);
        let (lo, up, guards) = extract_bounds(&s, "d");
        assert!(guards.is_empty());
        assert_eq!(lo.terms.len(), 1);
        assert_eq!(lo.terms[0].div, 2);
        assert_eq!(up.terms.len(), 1);
    }

    #[test]
    fn interleaved_pieces_merge_soundly() {
        // A: d = x, B: d = 10 - x over 1 <= x <= 9: A precedes B for
        // x < 5 and follows it for x > 5, so neither can be emitted
        // first — order_pieces must merge them into one piece whose
        // domain is implied by both.
        let d = || LinExpr::var("d");
        let x = || LinExpr::var("x");
        let bounds = vec![
            Constraint::ge(x(), LinExpr::constant(1)),
            Constraint::le(x(), LinExpr::constant(9)),
        ];
        let mut a = sys(bounds.clone());
        a.add(Constraint::eq(d(), x()));
        let mut b = sys(bounds);
        b.add(Constraint::eq(d(), LinExpr::constant(10) - x()));
        assert!(comes_after(&a, &b, &System::new(), "d"));
        assert!(comes_after(&b, &a, &System::new(), "d"));
        let merged = order_pieces(
            vec![
                Piece {
                    dom: a.clone(),
                    stmts: vec![0],
                },
                Piece {
                    dom: b.clone(),
                    stmts: vec![1],
                },
            ],
            &System::new(),
            "d",
        );
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].stmts, vec![0, 1]);
        // the merged domain admits every point of both pieces
        for xv in 1..=9 {
            for (dv, _piece) in [(xv, &a), (10 - xv, &b)] {
                let env = move |v: &str| if v == "x" { xv } else { dv };
                assert!(merged[0].dom.eval(&env), "lost point x={xv} d={dv}");
            }
        }
        // and d stays bounded so a loop can still be emitted
        let (lo, hi, _) = extract_bounds(&merged[0].dom, "d");
        assert!(!lo.terms.is_empty() && !hi.terms.is_empty());
    }

    #[test]
    fn fig6_matmul_single_shackle() {
        // Figure 6: blocking C alone gives block loops over C and the
        // full K loop, no guards.
        let p = kernels::matmul_ijk();
        let s = Shackle::on_writes(&p, Blocking::square("C", 2, &[0, 1], 25));
        let g = generate_scanned(&p, &[s]);
        let text = g.to_string();
        assert!(text.contains("do b1 = 1 .. floord(N + 24, 25)"), "{text}");
        assert!(text.contains("do K = 1 .. N"), "{text}");
        assert!(
            !text.contains("if ("),
            "guards should simplify away:\n{text}"
        );
        // I's bounds are block-relative
        assert!(
            text.contains("do I = 25b1 - 24 .. min(N, 25b1)")
                || text.contains("do I = 25b1 - 24 .. min(25b1, N)"),
            "{text}"
        );
    }

    #[test]
    fn fig3_matmul_product_fully_blocked() {
        // Figure 3: the product M_C × M_A tiles all three loops.
        let p = kernels::matmul_ijk();
        let sc = Shackle::on_writes(&p, Blocking::square("C", 2, &[0, 1], 25));
        let sa = Shackle::new(
            &p,
            Blocking::square("A", 2, &[0, 1], 25),
            vec![shackle_ir::ArrayRef::vars("A", &["I", "K"])],
        );
        let g = generate_scanned(&p, &[sc, sa]);
        let text = g.to_string();
        // four block coordinates, but two coincide (C's row block = A's
        // row block), so at least three materialize as loops; K now has
        // block-relative bounds.
        assert!(!text.contains("if ("), "{text}");
        assert!(text.contains("do K = 25b"), "{text}");
    }
}
