//! Data shackles (Definition 1 of the paper).

use crate::Blocking;
use shackle_ir::{ArrayRef, Program, StmtId};
use shackle_polyhedra::Constraint;
use std::fmt;

/// A data shackle: a [`Blocking`] of one array together with one
/// *shackled reference* per statement (§4.1).
///
/// When a block is "touched" (blocks are visited in lexicographic order
/// of block coordinates), all instances of each statement whose shackled
/// reference falls inside the block are executed, in original program
/// order.
///
/// The shackled reference of a statement need not textually occur in it:
/// the paper's §5.3 *dummy reference* mechanism (`+ 0*B[I,J]`) is
/// realized here by simply passing any affine reference to the blocked
/// array in the statement's iteration variables.
///
/// # Examples
///
/// Shackle the matrix-multiply statement to blocks of `C` through its
/// `C[I,J]` reference:
///
/// ```
/// use shackle_core::{Blocking, Shackle};
/// use shackle_ir::kernels;
///
/// let p = kernels::matmul_ijk();
/// let blocking = Blocking::square("C", 2, &[0, 1], 25);
/// let shackle = Shackle::on_writes(&p, blocking);
/// assert_eq!(shackle.refs().len(), 1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Shackle {
    blocking: Blocking,
    refs: Vec<ArrayRef>,
}

impl Shackle {
    /// Create a shackle with an explicit shackled reference per
    /// statement (indexed by [`StmtId`]).
    ///
    /// # Panics
    ///
    /// Panics if the number of references differs from the number of
    /// statements, if a reference is not to the blocked array, if its
    /// rank is wrong, or if a subscript uses a variable that is not a
    /// surrounding loop variable or parameter of its statement.
    pub fn new(program: &Program, blocking: Blocking, refs: Vec<ArrayRef>) -> Self {
        assert_eq!(
            refs.len(),
            program.stmts().len(),
            "one shackled reference per statement"
        );
        let decl = program
            .array(blocking.array())
            .unwrap_or_else(|| panic!("array {} not declared", blocking.array()));
        for (id, r) in refs.iter().enumerate() {
            assert_eq!(
                r.array(),
                blocking.array(),
                "shackled reference {r} of {} is not to array {}",
                program.stmts()[id].label(),
                blocking.array()
            );
            assert_eq!(r.indices().len(), decl.rank(), "rank mismatch in {r}");
            let ctx = program.context(id);
            let iter_vars = ctx.iter_vars();
            for ix in r.indices() {
                for v in ix.vars() {
                    assert!(
                        iter_vars.contains(&v) || program.params().iter().any(|p| p == v),
                        "shackled reference {r} uses out-of-scope variable {v} \
                         in statement {}",
                        program.stmts()[id].label()
                    );
                }
            }
        }
        Self { blocking, refs }
    }

    /// The paper's most common choice: shackle every statement through
    /// its left-hand-side reference ("all statement instances that write
    /// into this block of data").
    ///
    /// # Panics
    ///
    /// Panics if some statement does not write the blocked array (use
    /// [`Shackle::new`] with an explicit — possibly dummy — reference in
    /// that case).
    pub fn on_writes(program: &Program, blocking: Blocking) -> Self {
        let refs = program
            .stmts()
            .iter()
            .map(|s| {
                assert_eq!(
                    s.write().array(),
                    blocking.array(),
                    "statement {} does not write {}; choose its shackled \
                     reference explicitly",
                    s.label(),
                    blocking.array()
                );
                s.write().clone()
            })
            .collect();
        Self::new(program, blocking, refs)
    }

    /// The blocking.
    pub fn blocking(&self) -> &Blocking {
        &self.blocking
    }

    /// The shackled references, indexed by statement.
    pub fn refs(&self) -> &[ArrayRef] {
        &self.refs
    }

    /// Number of block coordinates contributed by this shackle.
    pub fn coord_count(&self) -> usize {
        self.blocking.cuts().len()
    }

    /// Constraints tying block-coordinate variables `zs` to the data
    /// touched by statement `id`'s shackled reference, with the
    /// statement's iteration variables renamed by `rename` (identity
    /// when it returns `None`).
    pub fn tie_for(
        &self,
        id: StmtId,
        zs: &[String],
        rename: &dyn Fn(&str) -> Option<String>,
    ) -> Vec<Constraint> {
        let r = self.refs[id].rename_vars(rename);
        self.blocking.tie(zs, &r)
    }

    /// The block-coordinate expressions of the shackle map `M` for
    /// statement `id` are existentially tied variables, not closed-form
    /// expressions; this helper returns fresh variable names for them,
    /// namespaced by `prefix` and this shackle's position `factor` in a
    /// product.
    pub fn coord_names(&self, prefix: &str, factor: usize) -> Vec<String> {
        (0..self.coord_count())
            .map(|k| format!("{prefix}z{factor}_{k}"))
            .collect()
    }
}

impl fmt::Display for Shackle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shackle[{}; refs:", self.blocking)?;
        for (i, r) in self.refs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, " {r}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shackle_ir::kernels;

    #[test]
    fn on_writes_picks_lhs() {
        let p = kernels::cholesky_right();
        let b = Blocking::square("A", 2, &[1, 0], 64);
        let s = Shackle::on_writes(&p, b);
        assert_eq!(s.refs()[0].to_string(), "A[J, J]");
        assert_eq!(s.refs()[1].to_string(), "A[I, J]");
        assert_eq!(s.refs()[2].to_string(), "A[L, K]");
        assert_eq!(s.coord_count(), 2);
    }

    #[test]
    #[should_panic(expected = "does not write")]
    fn on_writes_requires_lhs_on_array() {
        let p = kernels::matmul_ijk();
        // A is only read by matmul's statement
        let b = Blocking::square("A", 2, &[0, 1], 25);
        let _ = Shackle::on_writes(&p, b);
    }

    #[test]
    fn explicit_refs_allow_reads_and_dummies() {
        let p = kernels::matmul_ijk();
        let b = Blocking::square("A", 2, &[0, 1], 25);
        // shackle through the read A[I,K]
        let s = Shackle::new(&p, b, vec![ArrayRef::vars("A", &["I", "K"])]);
        assert_eq!(s.refs()[0].to_string(), "A[I, K]");
    }

    #[test]
    #[should_panic(expected = "out-of-scope")]
    fn dummy_reference_must_be_in_scope() {
        let p = kernels::matmul_ijk();
        let b = Blocking::square("A", 2, &[0, 1], 25);
        let _ = Shackle::new(&p, b, vec![ArrayRef::vars("A", &["Q", "K"])]);
    }

    #[test]
    fn tie_for_renames() {
        let p = kernels::matmul_ijk();
        let b = Blocking::square("C", 2, &[0, 1], 25);
        let s = Shackle::on_writes(&p, b);
        let cs = s.tie_for(0, &["z0".into(), "z1".into()], &|v| Some(format!("s${v}")));
        assert_eq!(cs.len(), 4);
        assert!(cs.iter().any(|c| c.expr().coeff("s$I") != 0));
        assert!(cs.iter().all(|c| c.expr().coeff("I") == 0));
    }
}
