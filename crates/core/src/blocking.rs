//! Blockings: cutting planes that partition an array into blocks (§4.1).

use shackle_ir::{ArrayRef, Program};
use shackle_polyhedra::lex::Direction;
use shackle_polyhedra::{Constraint, LinExpr};
use std::fmt;

/// One set of parallel cutting planes: a normal vector and the constant
/// separation (block width) between consecutive planes.
///
/// A data point `a` (1-based) gets coordinate `z` along this set when
/// `width·z − (width−1) ≤ ⟨normal, a⟩ ≤ width·z` — i.e.
/// `z = ⌈⟨normal, a⟩ / width⌉` for positive projections, matching the
/// paper's `25·b − 24 ≤ J ≤ 25·b`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CutSet {
    /// The plane normal, one entry per array dimension.
    pub normal: Vec<i64>,
    /// The distance between planes (block extent along the normal).
    pub width: i64,
    /// Traversal direction of block coordinates along this set.
    pub direction: Direction,
}

impl CutSet {
    /// Axis-aligned planes slicing dimension `dim` (0-based) of a
    /// rank-`rank` array into slabs of `width`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= rank` or `width < 1`.
    pub fn axis(dim: usize, rank: usize, width: i64) -> Self {
        assert!(
            dim < rank,
            "cut dimension {dim} out of range for rank {rank}"
        );
        assert!(width >= 1, "block width must be at least 1");
        let mut normal = vec![0; rank];
        normal[dim] = 1;
        Self {
            normal,
            width,
            direction: Direction::Increasing,
        }
    }

    /// General planes with the given normal.
    ///
    /// # Panics
    ///
    /// Panics if the normal is all zeros or `width < 1`.
    pub fn general(normal: Vec<i64>, width: i64) -> Self {
        assert!(normal.iter().any(|&c| c != 0), "normal must be non-zero");
        assert!(width >= 1, "block width must be at least 1");
        Self {
            normal,
            width,
            direction: Direction::Increasing,
        }
    }

    /// Reverse the traversal direction (the paper's §8: walk blocks
    /// "bottom to top or right to left" when required for legality).
    pub fn reversed(mut self) -> Self {
        self.direction = Direction::Decreasing;
        self
    }

    /// The projection `⟨normal, indices⟩` of a reference's subscripts
    /// onto this cut set's normal.
    pub fn project(&self, r: &ArrayRef) -> LinExpr {
        assert_eq!(
            self.normal.len(),
            r.indices().len(),
            "cut set rank does not match reference {r}"
        );
        let mut e = LinExpr::zero();
        for (c, ix) in self.normal.iter().zip(r.indices()) {
            e = e + ix.clone() * *c;
        }
        e
    }

    /// Constraints tying block coordinate `z` to the data touched by
    /// reference `r`:
    /// `width·z − (width−1) ≤ ⟨normal, r⟩ ≤ width·z`.
    ///
    /// For a [`Direction::Decreasing`] cut set the stored coordinate is
    /// *negated* (`z = −⌈⟨n,r⟩/width⌉`), so that increasing lexicographic
    /// traversal of the coordinate visits blocks in decreasing data
    /// order — the §8 "bottom to top / right to left" walk — while
    /// everything downstream (legality, code generation) still sees
    /// ordinary affine constraints scanned in increasing order.
    pub fn tie(&self, z: &str, r: &ArrayRef) -> Vec<Constraint> {
        let proj = self.project(r);
        let w = match self.direction {
            Direction::Increasing => self.width,
            Direction::Decreasing => -self.width,
        };
        let wz = LinExpr::term(z, w);
        vec![
            Constraint::ge(proj.clone(), wz.clone() - LinExpr::constant(self.width - 1)),
            Constraint::le(proj, wz),
        ]
    }
}

impl fmt::Display for CutSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n: Vec<String> = self.normal.iter().map(|c| c.to_string()).collect();
        write!(f, "planes n=({}) width {}", n.join(","), self.width)?;
        if self.direction == Direction::Decreasing {
            write!(f, " (reversed)")?;
        }
        Ok(())
    }
}

/// A blocking of one array: an ordered list of cut sets (the columns of
/// the paper's *cutting planes matrix*). Blocks are visited in
/// lexicographic order of their coordinates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Blocking {
    array: String,
    cuts: Vec<CutSet>,
}

impl Blocking {
    /// A blocking of `array` by the given cut sets, applied in order.
    ///
    /// # Panics
    ///
    /// Panics if `cuts` is empty.
    pub fn new(array: impl Into<String>, cuts: Vec<CutSet>) -> Self {
        assert!(!cuts.is_empty(), "a blocking needs at least one cut set");
        Self {
            array: array.into(),
            cuts,
        }
    }

    /// The common case: square axis-aligned blocks of `width` on every
    /// dimension of a rank-`rank` array, dimensions cut in the given
    /// order.
    ///
    /// `dims_in_order` lists 0-based dimensions; e.g. `[1, 0]` cuts
    /// columns first then rows, which makes lexicographic block order
    /// "left to right, then top to bottom" — the order the paper's
    /// Figure 7 walks Cholesky blocks.
    pub fn square(
        array: impl Into<String>,
        rank: usize,
        dims_in_order: &[usize],
        width: i64,
    ) -> Self {
        let cuts = dims_in_order
            .iter()
            .map(|&d| CutSet::axis(d, rank, width))
            .collect();
        Self::new(array, cuts)
    }

    /// The blocked array's name.
    pub fn array(&self) -> &str {
        &self.array
    }

    /// The cut sets in application order.
    pub fn cuts(&self) -> &[CutSet] {
        &self.cuts
    }

    /// Per-coordinate traversal directions.
    pub fn directions(&self) -> Vec<Direction> {
        self.cuts.iter().map(|c| c.direction).collect()
    }

    /// Constraints tying block coordinates `zs` (one name per cut set)
    /// to the data touched by reference `r`.
    ///
    /// # Panics
    ///
    /// Panics if `zs.len()` differs from the number of cut sets or if
    /// `r` is not a reference to the blocked array.
    pub fn tie(&self, zs: &[String], r: &ArrayRef) -> Vec<Constraint> {
        assert_eq!(zs.len(), self.cuts.len(), "one coordinate per cut set");
        assert_eq!(
            r.array(),
            self.array,
            "reference {r} is not to {}",
            self.array
        );
        self.cuts
            .iter()
            .zip(zs)
            .flat_map(|(c, z)| c.tie(z, r))
            .collect()
    }

    /// Loop bounds for block coordinate `k` when scanning all blocks of
    /// the declared array: `1 ..= ceil(extent / width)` for an
    /// increasing axis-aligned cut of a 1-based array, and the negated
    /// mirror `−ceil(extent / width) ..= −1` for a decreasing one (see
    /// [`CutSet::tie`]).
    ///
    /// # Panics
    ///
    /// Panics for non-axis-aligned cut sets (code generation is
    /// restricted to axis-aligned blockings; legality is not).
    pub fn coord_bounds(
        &self,
        k: usize,
        program: &Program,
    ) -> (shackle_ir::Bound, shackle_ir::Bound) {
        use shackle_ir::{Bound, BoundTerm};
        let cut = &self.cuts[k];
        let axis = {
            let nz: Vec<usize> = (0..cut.normal.len())
                .filter(|&d| cut.normal[d] != 0)
                .collect();
            assert!(
                nz.len() == 1 && cut.normal[nz[0]] == 1,
                "code generation requires axis-aligned unit normals, got {cut}"
            );
            nz[0]
        };
        let decl = program
            .array(&self.array)
            .unwrap_or_else(|| panic!("array {} not declared", self.array));
        let extent = decl.dims()[axis].clone();
        let w = cut.width;
        match cut.direction {
            Direction::Increasing => (
                Bound::constant(1),
                // z <= ceil(extent / w) = floor((extent + w - 1) / w)
                Bound::new(vec![BoundTerm::div(extent + LinExpr::constant(w - 1), w)]),
            ),
            Direction::Decreasing => (
                // z >= -ceil(extent / w) = ceil(-(extent + w - 1) / w)
                Bound::new(vec![BoundTerm::div(
                    -(extent + LinExpr::constant(w - 1)),
                    w,
                )]),
                Bound::constant(-1),
            ),
        }
    }
}

impl fmt::Display for Blocking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {} by [", self.array)?;
        for (i, c) in self.cuts.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_tie_matches_paper_form() {
        // block J with width 25: 25b - 24 <= J <= 25b
        let cut = CutSet::axis(1, 2, 25);
        let r = ArrayRef::vars("A", &["I", "J"]);
        let cs = cut.tie("b", &r);
        assert_eq!(cs.len(), 2);
        // J=25, b=1 ok; J=26,b=1 not; J=26,b=2 ok
        let holds = |j: i64, b: i64| cs.iter().all(|c| c.eval(&|v| if v == "b" { b } else { j }));
        assert!(holds(25, 1));
        assert!(!holds(26, 1));
        assert!(holds(26, 2));
        assert!(holds(1, 1));
        assert!(!holds(0, 1));
    }

    #[test]
    fn general_normal_projection() {
        // anti-diagonal planes n = (1, 1)
        let cut = CutSet::general(vec![1, 1], 10);
        let r = ArrayRef::vars("A", &["I", "J"]);
        let p = cut.project(&r);
        assert_eq!(p.to_string(), "I + J");
    }

    #[test]
    fn square_blocking_col_major_order() {
        let b = Blocking::square("A", 2, &[1, 0], 64);
        assert_eq!(b.cuts().len(), 2);
        // first cut set slices columns (dimension 1)
        assert_eq!(b.cuts()[0].normal, vec![0, 1]);
        assert_eq!(b.cuts()[1].normal, vec![1, 0]);
    }

    #[test]
    fn tie_block_coordinates_unique() {
        // Block coordinates are functionally determined: a point cannot
        // be in two different blocks.
        let b = Blocking::square("A", 2, &[0, 1], 25);
        let r = ArrayRef::vars("A", &["I", "J"]);
        let c1 = b.tie(&["z1".into(), "z2".into()], &r);
        let c2 = b.tie(&["w1".into(), "w2".into()], &r);
        let mut sys = shackle_polyhedra::System::from_constraints(c1.into_iter().chain(c2));
        sys.add(Constraint::gt(LinExpr::var("z1"), LinExpr::var("w1")));
        assert!(!sys.is_integer_feasible());
    }

    #[test]
    #[should_panic(expected = "axis-aligned")]
    fn coord_bounds_rejects_general_normals() {
        let b = Blocking::new("A", vec![CutSet::general(vec![1, 1], 10)]);
        let p = shackle_ir::kernels::matmul_ijk();
        let _ = b.coord_bounds(0, &p);
    }

    #[test]
    fn reversed_direction_recorded() {
        let b = Blocking::new("A", vec![CutSet::axis(0, 2, 8).reversed()]);
        assert_eq!(b.directions(), vec![Direction::Decreasing]);
    }
}
