//! The legality test: Theorem 1 of the paper.
//!
//! A shackle product defines a map `M` from statement instances to a
//! totally ordered set (the lexicographically ordered block-coordinate
//! vectors). The generated code is legal iff for every dependence from
//! instance `(S1, s)` to instance `(S2, t)` it is *impossible* that
//! `M(S2, t) ≺ M(S1, t)` — that the target's block is touched strictly
//! before the source's. Each such impossibility is an integer
//! infeasibility query, decided exactly by the Omega test.

use crate::Shackle;
use shackle_ir::deps::{dependences, prefix_renamer, Dependence, SRC_PREFIX, TGT_PREFIX};
use shackle_ir::Program;
use shackle_polyhedra::lex::lex_lt;
use shackle_polyhedra::{Budget, LinExpr, System, Verdict};
use std::fmt;
use std::sync::LazyLock;

/// Total Theorem-1 verdicts rendered (one per candidate×dependence-set
/// query), published to the probe counter `core.legality_queries`.
static LEGALITY_QUERIES: LazyLock<&'static shackle_probe::Counter> =
    LazyLock::new(|| shackle_probe::counter("core.legality_queries"));

fn count_legality_query() {
    if shackle_probe::enabled() {
        LEGALITY_QUERIES.add(1);
    }
}

/// A witnessed legality violation: a dependence together with a
/// constraint system whose integer points are dependent instance pairs
/// executed in the wrong order.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The violated dependence.
    pub dependence: Dependence,
    /// A feasible system witnessing the violation (source instance
    /// variables `s$…`, target `t$…`, block coordinates `sz…`/`tz…`).
    pub witness: System,
}

impl Violation {
    /// Materialize a concrete witness: values for the source instance
    /// (`s$…`), target instance (`t$…`), parameters and block
    /// coordinates, searched within `[-bound, bound]`.
    ///
    /// Returns `None` only when every witness needs a value outside the
    /// box (rare: violations admit small witnesses because the systems
    /// are satisfiable near the origin).
    pub fn witness_point(&self, bound: i64) -> Option<Vec<(String, i64)>> {
        self.witness.find_point(bound)
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "violated {}", self.dependence)?;
        if let Some(point) = self.witness_point(64) {
            let interesting: Vec<String> = point
                .iter()
                .filter(|(v, _)| !v.contains("z"))
                .map(|(v, k)| format!("{v}={k}"))
                .collect();
            write!(f, " (e.g. {})", interesting.join(", "))?;
        }
        Ok(())
    }
}

/// The outcome of a legality check.
#[derive(Clone, Debug)]
pub struct LegalityReport {
    /// Number of dependences examined.
    pub dependences_checked: usize,
    /// All violations found (empty iff no *proven* violation).
    pub violations: Vec<Violation>,
    /// Dependences whose Theorem-1 queries the solver could not prove
    /// either way within the default [`Budget`] (no probe was proven
    /// feasible, but at least one came back `Unknown`). Always empty
    /// for in-repo kernels; adversarial inputs land here instead of
    /// panicking, and [`Self::is_legal`] treats them as disqualifying —
    /// a shackle is only legal when legality is *proven*.
    pub unknown: Vec<Dependence>,
}

impl LegalityReport {
    /// True iff every dependence is proven respected: no violation and
    /// no undecided query. Conservative by construction — `Unknown`
    /// never admits a candidate, so generated code stays correct.
    pub fn is_legal(&self) -> bool {
        self.violations.is_empty() && self.unknown.is_empty()
    }
}

/// Check the legality of a product of shackles against a program
/// (Theorem 1 applied to the Cartesian-product map of §6).
///
/// An empty product is trivially legal. A single-element slice checks
/// one shackle; more elements check their Cartesian product
/// (Definition 2): the product map concatenates block-coordinate
/// vectors, compared lexicographically.
///
/// # Examples
///
/// Shackling matrix multiply's `C[I,J]` to blocks of `C` is legal:
///
/// ```
/// use shackle_core::{check_legality, Blocking, Shackle};
/// use shackle_ir::kernels;
///
/// let p = kernels::matmul_ijk();
/// let s = Shackle::on_writes(&p, Blocking::square("C", 2, &[0, 1], 25));
/// assert!(check_legality(&p, &[s]).is_legal());
/// ```
pub fn check_legality(program: &Program, factors: &[Shackle]) -> LegalityReport {
    let deps = dependences(program);
    check_legality_with_deps(program, factors, &deps)
}

/// As [`check_legality`], but reusing precomputed dependences (useful
/// when enumerating many candidate shackles, as in the paper's §6.1
/// exploration of the six Cholesky shacklings).
pub fn check_legality_with_deps(
    program: &Program,
    factors: &[Shackle],
    deps: &[Dependence],
) -> LegalityReport {
    check_legality_with_deps_budget(program, factors, deps, &Budget::default())
}

/// As [`check_legality_with_deps`], but deciding every probe under the
/// caller's [`Budget`] instead of the default. A tighter budget turns
/// hard probes into `Unknown` entries of the report rather than
/// grinding through them — the optimization daemon uses this to refuse
/// (with a structured error) requests whose legality it cannot prove
/// within its per-request budget.
pub fn check_legality_with_deps_budget(
    program: &Program,
    factors: &[Shackle],
    deps: &[Dependence],
    budget: &Budget,
) -> LegalityReport {
    let _phase = shackle_probe::span("legality");
    count_legality_query();
    let ctx = LegalityContext::new(program, factors);
    let mut violations = Vec::new();
    let mut unknown = Vec::new();
    for dep in deps {
        match ctx.dep_outcome(dep, budget) {
            DepOutcome::Violated(witness) => violations.push(Violation {
                dependence: dep.clone(),
                witness,
            }),
            DepOutcome::Respected => {}
            DepOutcome::Unknown => unknown.push(dep.clone()),
        }
    }
    LegalityReport {
        dependences_checked: deps.len(),
        violations,
        unknown,
    }
}

/// Boolean-only legality with early exit: stops at the first violated
/// dependence and orders probes cheapest-first, so illegal candidates
/// are rejected after a single small feasibility query in the common
/// case. The verdict is identical to
/// `check_legality_with_deps(..).is_legal()` (probe order cannot change
/// whether *some* probe is feasible); only the work done differs. This
/// is the hot path of [`crate::search::enumerate_legal`].
pub fn is_legal_with_deps(program: &Program, factors: &[Shackle], deps: &[Dependence]) -> bool {
    let _phase = shackle_probe::span("legality");
    count_legality_query();
    LegalityContext::new(program, factors).is_legal(deps)
}

/// The pre-context-sharing Theorem-1 implementation: tie systems are
/// rebuilt for every dependence and probes run in the fixed enumeration
/// order with no early exit across dependences. Kept verbatim as the
/// measured baseline for the memoized pipeline
/// (`shackle-bench`'s `searchperf`) and as a differential-testing
/// oracle; the verdict is identical to [`check_legality_with_deps`].
pub fn check_legality_reference(
    program: &Program,
    factors: &[Shackle],
    deps: &[Dependence],
) -> LegalityReport {
    let _phase = shackle_probe::span("legality");
    count_legality_query();
    let mut violations = Vec::new();
    for dep in deps {
        let src_vars: Vec<String> = program
            .context(dep.src)
            .iter_vars()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let tgt_vars: Vec<String> = program
            .context(dep.dst)
            .iter_vars()
            .iter()
            .map(|s| s.to_string())
            .collect();

        // Tie block coordinates of source and target instances.
        let mut ties = System::new();
        let mut src_coords: Vec<LinExpr> = Vec::new();
        let mut tgt_coords: Vec<LinExpr> = Vec::new();
        for (f, shackle) in factors.iter().enumerate() {
            let sz = shackle.coord_names("s", f);
            let tz = shackle.coord_names("t", f);
            ties.add_all(shackle.tie_for(dep.src, &sz, &prefix_renamer(&src_vars, SRC_PREFIX)));
            ties.add_all(shackle.tie_for(dep.dst, &tz, &prefix_renamer(&tgt_vars, TGT_PREFIX)));
            src_coords.extend(sz.iter().map(LinExpr::var));
            tgt_coords.extend(tz.iter().map(LinExpr::var));
        }

        let bad_order = lex_lt(&tgt_coords, &src_coords, &[]);
        'dep: for order_disjunct in &dep.systems {
            let base = order_disjunct.and(&ties);
            for bad in &bad_order {
                let probe = base.and(bad);
                if probe.is_integer_feasible() {
                    violations.push(Violation {
                        dependence: dep.clone(),
                        witness: probe,
                    });
                    // one witness per dependence is enough
                    break 'dep;
                }
            }
        }
    }
    LegalityReport {
        dependences_checked: deps.len(),
        violations,
        // the reference oracle predates the fallible solver and runs
        // only on in-repo kernels, where every query is proven
        unknown: Vec::new(),
    }
}

/// How one dependence fared under the Theorem-1 probes.
enum DepOutcome {
    /// Some probe is proven feasible: this witness violates the order.
    Violated(System),
    /// Every probe is proven infeasible.
    Respected,
    /// No probe proven feasible, at least one undecided — degrade
    /// conservatively (reject the candidate, never crash the search).
    Unknown,
}

/// Shared per-candidate state of the Theorem-1 test: block-coordinate
/// tie systems per statement (source- and target-prefixed) and the
/// "target's block strictly precedes source's" disjunction. Building
/// these once per candidate instead of once per dependence matters
/// because every statement participates in several dependences.
pub(crate) struct LegalityContext {
    src_ties: Vec<System>,
    tgt_ties: Vec<System>,
    src_coords: Vec<LinExpr>,
    tgt_coords: Vec<LinExpr>,
    bad_order: Vec<System>,
}

impl LegalityContext {
    pub(crate) fn new(program: &Program, factors: &[Shackle]) -> Self {
        let n = program.stmts().len();
        let mut ctx = Self {
            src_ties: vec![System::new(); n],
            tgt_ties: vec![System::new(); n],
            src_coords: Vec::new(),
            tgt_coords: Vec::new(),
            bad_order: Vec::new(),
        };
        for (f, shackle) in factors.iter().enumerate() {
            ctx.push_factor(program, shackle, f);
        }
        ctx.rebuild_bad_order();
        ctx
    }

    /// The context for `factors ∪ {shackle}` given `self` built over
    /// `factors` (of length `f`). Greedy product growth tests every
    /// candidate extension of the same prefix, so sharing the prefix
    /// ties and re-deriving only the new factor's turns an `O(f+1)`
    /// rebuild per candidate into `O(1)` factor work.
    pub(crate) fn extended(&self, program: &Program, shackle: &Shackle, f: usize) -> Self {
        let mut ctx = Self {
            src_ties: self.src_ties.clone(),
            tgt_ties: self.tgt_ties.clone(),
            src_coords: self.src_coords.clone(),
            tgt_coords: self.tgt_coords.clone(),
            bad_order: Vec::new(),
        };
        ctx.push_factor(program, shackle, f);
        ctx.rebuild_bad_order();
        ctx
    }

    fn push_factor(&mut self, program: &Program, shackle: &Shackle, f: usize) {
        let sz = shackle.coord_names("s", f);
        let tz = shackle.coord_names("t", f);
        for sid in 0..program.stmts().len() {
            let vars: Vec<String> = program
                .context(sid)
                .iter_vars()
                .iter()
                .map(|s| s.to_string())
                .collect();
            self.src_ties[sid].add_all(shackle.tie_for(
                sid,
                &sz,
                &prefix_renamer(&vars, SRC_PREFIX),
            ));
            self.tgt_ties[sid].add_all(shackle.tie_for(
                sid,
                &tz,
                &prefix_renamer(&vars, TGT_PREFIX),
            ));
        }
        self.src_coords.extend(sz.iter().map(LinExpr::var));
        self.tgt_coords.extend(tz.iter().map(LinExpr::var));
    }

    fn rebuild_bad_order(&mut self) {
        // Violated iff target's block strictly precedes source's.
        // Reversed cut sets are already encoded by negated coordinates
        // in `tie_for`, so the comparison is plain lexicographic.
        self.bad_order = lex_lt(&self.tgt_coords, &self.src_coords, &[]);
    }

    /// Early-exit boolean verdict over all dependences, cheapest first
    /// (see [`is_legal_with_deps`]). `Unknown` on any dependence means
    /// not-proven-legal, so the candidate is rejected.
    pub(crate) fn is_legal(&self, deps: &[Dependence]) -> bool {
        // Cheapest dependences first: a violation in a small system is
        // found long before the big ones are touched.
        let mut order: Vec<&Dependence> = deps.iter().collect();
        order.sort_by_key(|d| d.systems.iter().map(System::len).sum::<usize>());
        order.iter().all(|dep| self.is_violated(dep) == Verdict::No)
    }

    /// The outcome of this dependence in the fixed (order-disjunct,
    /// bad-order-disjunct) enumeration order — the witness reported by
    /// [`check_legality_with_deps`]. A probe the solver cannot decide
    /// keeps scanning (a later probe may still prove a violation) and
    /// only reports `Unknown` if no proven-feasible probe turns up.
    fn dep_outcome(&self, dep: &Dependence, budget: &Budget) -> DepOutcome {
        let ties = self.src_ties[dep.src].and(&self.tgt_ties[dep.dst]);
        let mut undecided = false;
        for order_disjunct in &dep.systems {
            let base = order_disjunct.and(&ties);
            for bad in &self.bad_order {
                let probe = base.and(bad);
                match probe.decide(budget) {
                    Verdict::Yes => return DepOutcome::Violated(probe),
                    Verdict::No => {}
                    Verdict::Unknown => undecided = true,
                }
            }
        }
        if undecided {
            DepOutcome::Unknown
        } else {
            DepOutcome::Respected
        }
    }

    /// Is any probe feasible? Probes are sorted by size so the cheapest
    /// queries run first; since feasibility of *some* probe is
    /// order-independent, `Yes`/`No` verdicts match
    /// [`Self::dep_outcome`]. `Yes` short-circuits even past undecided
    /// probes (a proven violation trumps an unknown one).
    fn is_violated(&self, dep: &Dependence) -> Verdict {
        let ties = self.src_ties[dep.src].and(&self.tgt_ties[dep.dst]);
        let mut probes: Vec<System> = Vec::new();
        for order_disjunct in &dep.systems {
            let base = order_disjunct.and(&ties);
            for bad in &self.bad_order {
                probes.push(base.and(bad));
            }
        }
        probes.sort_by_key(System::len);
        let mut undecided = false;
        for probe in &probes {
            match probe.decide(&Budget::default()) {
                Verdict::Yes => return Verdict::Yes,
                Verdict::No => {}
                Verdict::Unknown => undecided = true,
            }
        }
        if undecided {
            Verdict::Unknown
        } else {
            Verdict::No
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Blocking;
    use shackle_ir::{kernels, ArrayRef};

    fn square_c(width: i64) -> Blocking {
        Blocking::square("C", 2, &[0, 1], width)
    }

    #[test]
    fn matmul_all_single_shackles_legal() {
        // §6.1: "shackling any of the three references … is legal"
        let p = kernels::matmul_ijk();
        for (array, idx) in [("C", ["I", "J"]), ("A", ["I", "K"]), ("B", ["K", "J"])] {
            let b = Blocking::square(array, 2, &[0, 1], 25);
            let s = Shackle::new(&p, b, vec![ArrayRef::vars(array, &idx)]);
            let rep = check_legality(&p, &[s]);
            assert!(rep.is_legal(), "shackling {array} should be legal");
            assert!(rep.dependences_checked > 0);
        }
    }

    #[test]
    fn matmul_product_c_a_legal() {
        // §6.1: M_C × M_A produces Figure 3's fully blocked code
        let p = kernels::matmul_ijk();
        let sc = Shackle::new(&p, square_c(25), vec![ArrayRef::vars("C", &["I", "J"])]);
        let sa = Shackle::new(
            &p,
            Blocking::square("A", 2, &[0, 1], 25),
            vec![ArrayRef::vars("A", &["I", "K"])],
        );
        assert!(check_legality(&p, &[sc, sa]).is_legal());
    }

    #[test]
    fn reversed_traversal_of_matmul_is_legal_too() {
        // With no loop-carried dependence across C blocks, visiting
        // blocks bottom-to-top is fine as well.
        let p = kernels::matmul_ijk();
        let b = Blocking::new(
            "C",
            vec![
                crate::CutSet::axis(0, 2, 25).reversed(),
                crate::CutSet::axis(1, 2, 25),
            ],
        );
        let s = Shackle::new(&p, b, vec![ArrayRef::vars("C", &["I", "J"])]);
        assert!(check_legality(&p, &[s]).is_legal());
    }

    #[test]
    fn forward_recurrence_blocks_legal_reversed_illegal() {
        // A[I] = A[I-1] with 1-D blocking: forward traversal legal,
        // reversed traversal violates the flow dependence.
        use shackle_ir::{loop_, stmt, ArrayDecl, ScalarExpr, Statement};
        use shackle_polyhedra::LinExpr;
        let a = |ix: LinExpr| ArrayRef::new("A", vec![ix]);
        let s = Statement::new(
            "S",
            a(LinExpr::var("I")),
            ScalarExpr::from(a(LinExpr::var("I") - LinExpr::constant(1))),
        );
        let p = shackle_ir::Program::new(
            "shift",
            vec!["N".into()],
            vec![ArrayDecl::new("A", vec![LinExpr::var("N")])],
            vec![s],
            vec![loop_(
                "I",
                LinExpr::constant(1),
                LinExpr::var("N"),
                vec![stmt(0)],
            )],
        );
        let fwd = Shackle::new(
            &p,
            Blocking::new("A", vec![crate::CutSet::axis(0, 1, 10)]),
            vec![ArrayRef::vars("A", &["I"])],
        );
        assert!(check_legality(&p, &[fwd]).is_legal());
        let rev = Shackle::new(
            &p,
            Blocking::new("A", vec![crate::CutSet::axis(0, 1, 10).reversed()]),
            vec![ArrayRef::vars("A", &["I"])],
        );
        let rep = check_legality(&p, &[rev]);
        assert!(!rep.is_legal());
        assert!(!rep.violations.is_empty());
        // the witness system must actually be integer-feasible
        assert!(rep.violations[0].witness.is_integer_feasible());
    }

    #[test]
    fn violations_carry_concrete_witnesses() {
        // the refuted literal §6.1 choice: the witness must satisfy the
        // violation system and be printable
        let p = kernels::cholesky_right();
        let s = Shackle::new(
            &p,
            Blocking::square("A", 2, &[1, 0], 8),
            vec![
                ArrayRef::vars("A", &["J", "J"]),
                ArrayRef::vars("A", &["J", "J"]),
                ArrayRef::vars("A", &["L", "J"]),
            ],
        );
        let rep = check_legality(&p, &[s]);
        assert!(!rep.is_legal());
        let v = &rep.violations[0];
        let point = v.witness_point(64).expect("small witness exists");
        let env = |name: &str| {
            point
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, k)| *k)
                .unwrap_or(0)
        };
        assert!(
            v.witness.eval(&env),
            "witness point must satisfy the system"
        );
        // the rendered violation names concrete loop values
        let text = v.to_string();
        assert!(text.contains("(e.g. "), "{text}");
        assert!(text.contains("s$"), "{text}");
    }

    #[test]
    fn cholesky_on_writes_legal() {
        // §6.1: choosing A[J,J] from S1, A[I,J] from S2, A[L,K] from S3
        // (the writes) is one of the two legal shacklings.
        let p = kernels::cholesky_right();
        let b = Blocking::square("A", 2, &[1, 0], 64);
        let s = Shackle::on_writes(&p, b);
        assert!(check_legality(&p, &[s]).is_legal());
    }

    #[test]
    fn cholesky_left_looking_shackle_legal() {
        // The lazy-update ("left-looking") shackle: scale in the owning
        // block (A[I,J]) but pull updates by their *read* of the source
        // column (A[L,J]).
        //
        // Note: the paper's §6.1 lists the second legal choice as
        // "A[J,J] from S2, A[L,J] from S3", but that choice violates the
        // S3→S2 flow dependence (witness: S3 at J=1,L=100,K=2 writes
        // A[100,2]; S2 at J=2,I=100 reads it, yet S2's diagonal block
        // (1,1) is touched before S3's block). With S2 shackled to its
        // write A[I,J] — surely the intended reading — the shackle is
        // legal, and it is the one that produces fully-blocked
        // left-looking Cholesky.
        let p = kernels::cholesky_right();
        let b = Blocking::square("A", 2, &[1, 0], 64);
        let s = Shackle::new(
            &p,
            b,
            vec![
                ArrayRef::vars("A", &["J", "J"]),
                ArrayRef::vars("A", &["I", "J"]),
                ArrayRef::vars("A", &["L", "J"]),
            ],
        );
        assert!(check_legality(&p, &[s]).is_legal());
    }

    #[test]
    fn cholesky_paper_literal_second_choice_is_refuted() {
        // The literal (A[J,J], A[J,J], A[L,J]) choice from §6.1 is
        // refuted by the exact test — see the comment above.
        let p = kernels::cholesky_right();
        let b = Blocking::square("A", 2, &[1, 0], 64);
        let s = Shackle::new(
            &p,
            b,
            vec![
                ArrayRef::vars("A", &["J", "J"]),
                ArrayRef::vars("A", &["J", "J"]),
                ArrayRef::vars("A", &["L", "J"]),
            ],
        );
        let rep = check_legality(&p, &[s]);
        assert!(!rep.is_legal());
        // the violated dependence is the S3 → S2 flow
        assert!(rep
            .violations
            .iter()
            .any(|v| v.dependence.src == 2 && v.dependence.dst == 1));
    }

    #[test]
    fn cholesky_enumeration_of_all_six_shacklings() {
        // §6.1 enumerates the six ways to shackle right-looking Cholesky
        // (S1 fixed to A[J,J]; S2 ∈ {A[I,J], A[J,J]};
        // S3 ∈ {A[L,K], A[L,J], A[K,J]}). Our exact enumeration finds
        // three legal: the right-looking writes shackle, the
        // left-looking shackle, and (A[J,J], A[K,J]); the paper's
        // literal second listing is refuted (see above), consistently
        // under both block traversal orders.
        let p = kernels::cholesky_right();
        let deps = shackle_ir::deps::dependences(&p);
        let s2_choices = [["I", "J"], ["J", "J"]];
        let s3_choices = [["L", "K"], ["L", "J"], ["K", "J"]];
        let mut legal = Vec::new();
        for s2 in &s2_choices {
            for s3 in &s3_choices {
                let b = Blocking::square("A", 2, &[1, 0], 64);
                let s = Shackle::new(
                    &p,
                    b,
                    vec![
                        ArrayRef::vars("A", &["J", "J"]),
                        ArrayRef::vars("A", s2),
                        ArrayRef::vars("A", s3),
                    ],
                );
                if check_legality_with_deps(&p, &[s], &deps).is_legal() {
                    legal.push((s2.join(","), s3.join(",")));
                }
            }
        }
        assert_eq!(
            legal,
            vec![
                ("I,J".to_string(), "L,K".to_string()),
                ("I,J".to_string(), "L,J".to_string()),
                ("J,J".to_string(), "K,J".to_string()),
            ]
        );
    }

    #[test]
    fn cholesky_product_of_legal_shackles_legal_both_orders() {
        // §6: "the product of two shackles is always legal if the two
        // shackles are legal by themselves" — and the two orders give
        // fully-blocked right-looking and left-looking Cholesky.
        let p = kernels::cholesky_right();
        let deps = shackle_ir::deps::dependences(&p);
        let writes = Shackle::on_writes(&p, Blocking::square("A", 2, &[1, 0], 64));
        let reads = Shackle::new(
            &p,
            Blocking::square("A", 2, &[1, 0], 64),
            vec![
                ArrayRef::vars("A", &["J", "J"]),
                ArrayRef::vars("A", &["I", "J"]),
                ArrayRef::vars("A", &["L", "J"]),
            ],
        );
        let rw = check_legality_with_deps(&p, &[writes.clone(), reads.clone()], &deps);
        assert!(rw.is_legal());
        let wr = check_legality_with_deps(&p, &[reads, writes], &deps);
        assert!(wr.is_legal());
    }

    #[test]
    fn cholesky_wrong_choice_illegal() {
        // e.g. shackling S3 through A[K,J] is one of the four illegal
        // choices of §6.1.
        let p = kernels::cholesky_right();
        let b = Blocking::square("A", 2, &[1, 0], 64);
        let s = Shackle::new(
            &p,
            b,
            vec![
                ArrayRef::vars("A", &["J", "J"]),
                ArrayRef::vars("A", &["I", "J"]),
                ArrayRef::vars("A", &["K", "J"]),
            ],
        );
        assert!(!check_legality(&p, &[s]).is_legal());
    }
}
