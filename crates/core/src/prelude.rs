//! One-stop imports for the compile-time pipeline.
//!
//! Re-exports the types and functions that nearly every consumer of the
//! shackling pipeline touches: the shackle vocabulary from this crate,
//! the IR surface ([`Program`], [`ArrayRef`], dependence analysis, the
//! built-in kernels) and the polyhedral substrate ([`System`],
//! [`LinExpr`]). Downstream crates layer their own preludes on top
//! (`shackle_bench::prelude` adds execution, simulation and
//! instrumentation).
//!
//! ```
//! use shackle_core::prelude::*;
//!
//! let p = kernels::matmul_ijk();
//! let s = Shackle::on_writes(&p, Blocking::square("C", 2, &[0, 1], 25));
//! assert!(check_legality(&p, &[s]).is_legal());
//! ```

pub use crate::codegen::{naive::generate_naive, scan::generate_scanned};
pub use crate::search::{
    candidate_shackles, complete_product, complete_product_with_deps, enumerate_legal,
    enumerate_legal_with_deps, grid_shapes, reblock, two_phase, width_grid, Candidate,
    SearchConfig, TwoPhaseOutcome,
};
pub use crate::{
    check_legality, check_legality_reference, check_legality_with_deps, is_legal_with_deps,
    Blocking, CutSet, LegalityReport, Shackle, Violation,
};
pub use shackle_ir::deps::{dependences, Dependence};
pub use shackle_ir::{kernels, ArrayDecl, ArrayRef, Program, Statement, StmtId};
pub use shackle_polyhedra::{Constraint, LinExpr, System};
