//! Theorem 2: which references stay unconstrained by a shackle product.
//!
//! "The data accessed by `F_{n+1}` is bounded by block size parameters
//! iff every row of `F_{n+1}` is spanned by the rows of `F_1 … F_n`" —
//! where the `F_i` are the access matrices of the shackled references of
//! a statement and `F_{n+1}` is the access matrix of an unshackled
//! reference. This module implements the rational row-span test and the
//! derived guidance of §6.2 ("How big should the Cartesian products
//! be?").

use crate::Shackle;
use shackle_ir::{ArrayRef, Program, StmtId};
use shackle_polyhedra::num::gcd_slice;

/// Reduce `rows` to row-echelon form over ℚ using exact integer
/// arithmetic (fraction-free Gaussian elimination), in place; returns
/// the rank.
#[allow(clippy::needless_range_loop)] // row/col indices mirror the textbook algorithm
fn echelonize(rows: &mut [Vec<i64>]) -> usize {
    let ncols = rows.first().map_or(0, Vec::len);
    let mut rank = 0;
    for col in 0..ncols {
        // find pivot
        let Some(pivot) = (rank..rows.len()).find(|&r| rows[r][col] != 0) else {
            continue;
        };
        rows.swap(rank, pivot);
        let p = rows[rank][col];
        for r in 0..rows.len() {
            if r != rank && rows[r][col] != 0 {
                let q = rows[r][col];
                // row_r := p*row_r - q*row_rank  (eliminates col)
                for c in 0..ncols {
                    let val =
                        (p as i128) * (rows[r][c] as i128) - (q as i128) * (rows[rank][c] as i128);
                    rows[r][c] = i64::try_from(val).expect("span arithmetic overflow");
                }
                let g = gcd_slice(&rows[r]);
                if g > 1 {
                    for c in &mut rows[r] {
                        *c /= g;
                    }
                }
            }
        }
        rank += 1;
        if rank == rows.len() {
            break;
        }
    }
    // move zero rows (if any) to the end: already guaranteed by the loop
    rank
}

/// Is every row of `candidate` in the rational row space of `basis`?
///
/// # Examples
///
/// ```
/// use shackle_core::span::row_space_contains;
/// // rows of C[I,J] and A[I,K] access matrices span e3
/// let basis = vec![
///     vec![1, 0, 0], // I
///     vec![0, 1, 0], // J
///     vec![0, 0, 1], // K
/// ];
/// assert!(row_space_contains(&basis, &[vec![0, 1, 1]]));
/// let only_ij = vec![vec![1, 0, 0], vec![0, 1, 0]];
/// assert!(!row_space_contains(&only_ij, &[vec![0, 0, 1]]));
/// ```
pub fn row_space_contains(basis: &[Vec<i64>], candidate: &[Vec<i64>]) -> bool {
    if candidate.is_empty() {
        return true;
    }
    let mut b: Vec<Vec<i64>> = basis.to_vec();
    let base_rank = echelonize(&mut b);
    for row in candidate {
        let mut ext = basis.to_vec();
        ext.push(row.clone());
        let r = echelonize(&mut ext);
        if r > base_rank {
            return false;
        }
    }
    true
}

/// References of the program left unconstrained by the shackle product:
/// for each statement, each read/write whose access-matrix rows are not
/// all spanned by the shackled references' rows (Theorem 2).
///
/// An empty result is the paper's stopping criterion for growing a
/// Cartesian product: "If there is no statement left which has an
/// unconstrained reference, then there is no benefit to be obtained
/// from extending the product."
///
/// # Examples
///
/// ```
/// use shackle_core::{span::unconstrained_refs, Blocking, Shackle};
/// use shackle_ir::kernels;
/// let p = kernels::matmul_ijk();
/// let sc = Shackle::on_writes(&p, Blocking::square("C", 2, &[0, 1], 25));
/// // shackling C alone leaves A[I,K] and B[K,J] unconstrained (K free)
/// let un = unconstrained_refs(&p, &[sc]);
/// assert_eq!(un.len(), 2);
/// ```
pub fn unconstrained_refs(program: &Program, factors: &[Shackle]) -> Vec<(StmtId, ArrayRef)> {
    let mut out = Vec::new();
    for id in 0..program.stmts().len() {
        let ctx = program.context(id);
        let loop_vars = ctx.iter_vars();
        let mut basis: Vec<Vec<i64>> = Vec::new();
        for f in factors {
            basis.extend(f.refs()[id].access_matrix(&loop_vars));
        }
        for (r, _) in program.stmts()[id].refs() {
            let m = r.access_matrix(&loop_vars);
            if !row_space_contains(&basis, &m) {
                // report each distinct reference once per statement
                if !out
                    .iter()
                    .any(|(i, pr): &(StmtId, ArrayRef)| *i == id && pr == r)
                {
                    out.push((id, r.clone()));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Blocking;
    use shackle_ir::kernels;

    #[test]
    fn echelon_rank() {
        let mut rows = vec![vec![1, 2, 3], vec![2, 4, 6], vec![0, 1, 1]];
        assert_eq!(echelonize(&mut rows), 2);
        let mut id3 = vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]];
        assert_eq!(echelonize(&mut id3), 3);
        let mut empty: Vec<Vec<i64>> = vec![];
        assert_eq!(echelonize(&mut empty), 0);
    }

    #[test]
    fn span_with_rational_combination() {
        // [1,1] = 1/2*[2,0] + 1/2*[0,2] — rational coefficients needed
        let basis = vec![vec![2, 0], vec![0, 2]];
        assert!(row_space_contains(&basis, &[vec![1, 1]]));
    }

    #[test]
    fn paper_example_c_alone_leaves_b_unconstrained() {
        // §6.2: "Shackling [C[I,J]] does not bound the data accessed by
        // row [0 0 1] of the access matrix of B[K,J]."
        let p = kernels::matmul_ijk();
        let sc = Shackle::on_writes(&p, Blocking::square("C", 2, &[0, 1], 25));
        let un = unconstrained_refs(&p, std::slice::from_ref(&sc));
        let arrays: Vec<&str> = un.iter().map(|(_, r)| r.array()).collect();
        assert!(arrays.contains(&"A"));
        assert!(arrays.contains(&"B"));
        // "taking the Cartesian product … with the shackle obtained from
        // A[I,K] constrains the data accessed by B[K,J]"
        let sa = Shackle::new(
            &p,
            Blocking::square("A", 2, &[0, 1], 25),
            vec![shackle_ir::ArrayRef::vars("A", &["I", "K"])],
        );
        assert!(unconstrained_refs(&p, &[sc, sa]).is_empty());
    }

    #[test]
    fn cholesky_writes_shackle_constrains_everything_on_diag_stmts() {
        // S1: A[J,J] = sqrt(A[J,J]) — the lone loop var J is spanned.
        let p = kernels::cholesky_right();
        let s = Shackle::on_writes(&p, Blocking::square("A", 2, &[1, 0], 64));
        let un = unconstrained_refs(&p, &[s]);
        assert!(un.iter().all(|(id, _)| *id != 0), "S1 fully constrained");
        // S3 writes A[L,K]; reads A[L,J], A[K,J] involve J which is not
        // spanned by rows {e_L, e_K}… J appears in reads only → those
        // reads are unconstrained (reads come from the whole left part
        // of the matrix, as the paper notes below Figure 8).
        assert!(un.iter().any(|(id, _)| *id == 2));
    }
}
