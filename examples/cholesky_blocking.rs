//! Cholesky factorization through the full §6 story:
//!
//! 1. enumerate the six candidate shacklings of right-looking Cholesky
//!    and let the exact legality test sort them (§6.1);
//! 2. generate the Figure 7 code from the writes shackle and show its
//!    four sections;
//! 3. take the Cartesian product of the two interesting legal shackles
//!    to get fully blocked Cholesky, verify, and measure the miss
//!    reduction on the simulated SP-2 cache.
//!
//! Run with: `cargo run --release --example cholesky_blocking`

use data_shackle::core::{check_legality_with_deps, scan::generate_scanned, Blocking, Shackle};
use data_shackle::exec::verify::check_equivalence;
use data_shackle::ir::{deps::dependences, kernels, ArrayRef};
use data_shackle::kernels::gen::spd_ws_init;
use data_shackle::kernels::shackles;
use data_shackle::kernels::trace::trace_execution;
use data_shackle::memsim::Hierarchy;
use std::collections::BTreeMap;

fn main() {
    let program = kernels::cholesky_right();
    println!("=== input program (Figure 1(ii)) ===\n{program}");

    // --- §6.1: the six candidate shacklings ---
    let deps = dependences(&program);
    println!("dependences: {}", deps.len());
    println!("\ncandidate shacklings (S1 fixed to A[J,J]):");
    for s2 in [["I", "J"], ["J", "J"]] {
        for s3 in [["L", "K"], ["L", "J"], ["K", "J"]] {
            let shackle = Shackle::new(
                &program,
                Blocking::square("A", 2, &[1, 0], 64),
                vec![
                    ArrayRef::vars("A", &["J", "J"]),
                    ArrayRef::vars("A", &s2),
                    ArrayRef::vars("A", &s3),
                ],
            );
            let rep = check_legality_with_deps(&program, &[shackle], &deps);
            println!(
                "  S2 = A[{}], S3 = A[{}]  ->  {}",
                s2.join(","),
                s3.join(","),
                if rep.is_legal() { "legal" } else { "ILLEGAL" }
            );
        }
    }

    // --- Figure 7: the writes shackle, scanned ---
    let writes = shackles::cholesky_writes(&program, 4);
    let fig7 = generate_scanned(&program, &writes);
    println!("\n=== shackled code, writes shackle, block 4 (Figure 7) ===\n{fig7}");

    // --- the product: fully blocked Cholesky ---
    let product = shackles::cholesky_product(&program, 32);
    let report = check_legality_with_deps(&program, &product, &deps);
    assert!(report.is_legal());
    let full = generate_scanned(&program, &product);

    let n = 96_i64;
    let params = BTreeMap::from([("N".to_string(), n)]);
    let eq = check_equivalence(&program, &full, &params, spd_init(n));
    println!(
        "fully blocked Cholesky at n = {n}: max relative difference {:.3e}",
        eq.max_rel_diff
    );
    assert!(eq.within(1e-9));

    // --- miss counts on a small cache (8 KB so n = 96 exceeds it) ---
    let cfg = data_shackle::memsim::CacheConfig {
        size: 8 * 1024,
        line: 128,
        assoc: 4,
        latency: 0,
    };
    let mut h_in = Hierarchy::new(&[cfg], 60);
    let mut h_bl = Hierarchy::new(&[cfg], 60);
    trace_execution(&program, &params, spd_init(n), &mut h_in);
    trace_execution(&full, &params, spd_init(n), &mut h_bl);
    let (mi, mb) = (h_in.level_stats()[0].misses, h_bl.level_stats()[0].misses);
    println!(
        "cache misses (8 KB cache): input {mi}, fully blocked {mb}  ({:.1}x fewer)",
        mi as f64 / mb as f64
    );
    assert!(mb < mi);
    println!("\ncholesky_blocking OK");
}

fn spd_init(n: i64) -> impl Fn(&str, &[usize]) -> f64 {
    spd_ws_init("A", n as usize, 5)
}
