//! Fusion and interchange as a by-product of shackling (§7 /
//! Figure 14): blocking `B` into 1×1 blocks traversed in storage order
//! and shackling both ADI statements to `B[i-1,k]` turns the
//! scalarizer's strided two-loop sweep into a fused, interchanged,
//! stride-1 nest — no loop transformation was ever named.
//!
//! Run with: `cargo run --release --example adi_fusion`

use data_shackle::core::{check_legality, scan::generate_scanned};
use data_shackle::exec::verify::check_equivalence;
use data_shackle::ir::kernels;
use data_shackle::kernels::shackles;
use data_shackle::kernels::trace::trace_execution;
use data_shackle::memsim::Hierarchy;
use std::collections::BTreeMap;

fn main() {
    let program = kernels::adi();
    println!("=== input code (Figure 14(i)) ===\n{program}");

    let factors = shackles::adi_storage_order(&program);
    assert!(check_legality(&program, &factors).is_legal());

    let transformed = generate_scanned(&program, &factors);
    println!("=== shackled code (Figure 14(ii)) ===\n{transformed}");

    let init = |name: &str, idx: &[usize]| {
        if name == "B" {
            2.0 + ((idx[0] * 31 + idx[1] * 7) % 97) as f64 / 97.0
        } else {
            ((idx[0] * 13 + idx[1] * 3) % 89) as f64 / 89.0
        }
    };
    let n = 400_i64;
    let params = BTreeMap::from([("N".to_string(), n)]);
    let eq = check_equivalence(&program, &transformed, &params, init);
    println!("equivalence at n = {n}: {:.3e}", eq.max_rel_diff);
    assert!(eq.within(1e-12));

    // the paper reports 8.9x at n = 1000 on the SP-2; measure the
    // simulated speedup at n = 400 (the input sweeps rows of
    // column-major arrays, missing on every line)
    let mut h_in = Hierarchy::sp2_thin_node();
    let si = trace_execution(&program, &params, init, &mut h_in);
    let mut h_tr = Hierarchy::sp2_thin_node();
    let st = trace_execution(&transformed, &params, init, &mut h_tr);
    let cyc = |flops: u64, mem: u64| flops as f64 * 2.0 + mem as f64;
    let speedup = cyc(si.flops, h_in.cycles()) / cyc(st.flops, h_tr.cycles());
    println!("simulated speedup: {speedup:.1}x (paper: 8.9x at n = 1000)");
    assert!(speedup > 2.0);
    println!("\nadi_fusion OK");
}
