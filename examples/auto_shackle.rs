//! Fully automatic blocking — the paper's §8 vision assembled from the
//! workspace's pieces: enumerate legal shackles, complete products with
//! Theorem 2, score every candidate on the simulated memory hierarchy,
//! and emit the winner's code.
//!
//! Run with: `cargo run --release --example auto_shackle`

use data_shackle::core::search::{complete_product, enumerate_legal, SearchConfig};
use data_shackle::core::{scan::generate_scanned, Shackle};
use data_shackle::exec::verify::check_equivalence;
use data_shackle::ir::kernels;
use data_shackle::kernels::gen::spd_ws_init;
use data_shackle::kernels::trace::trace_execution;
use data_shackle::memsim::Hierarchy;
use std::collections::BTreeMap;

fn main() {
    let program = kernels::cholesky_right();
    let cfg = SearchConfig {
        width: 16,
        ..Default::default()
    };

    // 1. enumerate legal single shackles
    let legal = enumerate_legal(&program, &cfg);
    println!("legal single shackles: {}", legal.len());
    for c in &legal {
        println!(
            "  {} (unconstrained refs: {})",
            c.shackle,
            c.unconstrained.len()
        );
    }

    // 2. grow each into a fully-blocking product (Theorem 2)
    let mut products: Vec<Vec<Shackle>> = Vec::new();
    for c in &legal {
        let p = complete_product(&program, vec![c.shackle.clone()], &legal);
        if data_shackle::core::span::unconstrained_refs(&program, &p).is_empty()
            && !products.contains(&p)
        {
            products.push(p);
        }
    }
    println!("\nfully-blocking legal products: {}", products.len());

    // 3. score each candidate by simulated memory cycles at a probe
    //    size (the §8 cost-model role, played by the cache simulator)
    let n = 96_i64;
    let params = BTreeMap::from([("N".to_string(), n)]);
    let probe_cache = data_shackle::memsim::CacheConfig {
        size: 8 * 1024,
        line: 128,
        assoc: 4,
        latency: 0,
    };
    let mut scored: Vec<(u64, usize)> = Vec::new();
    for (i, product) in products.iter().enumerate() {
        let code = generate_scanned(&program, product);
        let mut h = Hierarchy::new(&[probe_cache], 60);
        trace_execution(&code, &params, spd_ws_init("A", n as usize, 3), &mut h);
        println!("  candidate {i}: {} memory cycles", h.cycles());
        scored.push((h.cycles(), i));
    }
    scored.sort_unstable();
    let winner = &products[scored[0].1];

    // 4. emit and verify the winner
    let code = generate_scanned(&program, winner);
    println!("\n=== selected blocked code ===\n{code}");
    let eq = check_equivalence(&program, &code, &params, spd_ws_init("A", n as usize, 3));
    assert!(eq.within(1e-9));
    // sanity: the winner beats the unblocked input on the probe cache
    let mut h_in = Hierarchy::new(&[probe_cache], 60);
    trace_execution(
        &program,
        &params,
        spd_ws_init("A", n as usize, 3),
        &mut h_in,
    );
    println!(
        "input: {} memory cycles; selected: {} ({:.1}x fewer)",
        h_in.cycles(),
        scored[0].0,
        h_in.cycles() as f64 / scored[0].0 as f64
    );
    assert!(scored[0].0 < h_in.cycles());
    println!("\nauto_shackle OK");
}
