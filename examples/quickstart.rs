//! Quickstart: block matrix multiplication the data-centric way.
//!
//! Reproduces the paper's §4 walk-through — choose a blocking of `C`,
//! shackle the statement to its `C[I,J]` reference, prove legality,
//! generate code (naive Figure 5 and simplified Figure 6), and verify
//! the transformed program computes the same product.
//!
//! Run with: `cargo run --example quickstart`

use data_shackle::core::{
    check_legality, naive::generate_naive, scan::generate_scanned, Blocking, Shackle,
};
use data_shackle::exec::verify::{check_equivalence, hash_init};
use data_shackle::ir::kernels;
use std::collections::BTreeMap;

fn main() {
    // Figure 1(i): the input program.
    let program = kernels::matmul_ijk();
    println!("=== input program (Figure 1(i)) ===\n{program}");

    // Definition 1: a data shackle. Block C into 25x25 blocks (two sets
    // of cutting planes), visit blocks left-to-right / top-to-bottom,
    // and execute each statement instance when the block its C[I,J]
    // reference touches is current.
    let shackle = Shackle::on_writes(&program, Blocking::square("C", 2, &[0, 1], 25));
    println!("shackle: {shackle}\n");

    // Theorem 1: legality, decided exactly by the Omega test.
    let report = check_legality(&program, std::slice::from_ref(&shackle));
    println!(
        "legality: {} ({} dependences checked)\n",
        if report.is_legal() {
            "LEGAL"
        } else {
            "ILLEGAL"
        },
        report.dependences_checked
    );

    // Figure 5: the naive guarded form (the shackle's executable
    // specification).
    let naive = generate_naive(&program, std::slice::from_ref(&shackle));
    println!("=== naive shackled code (Figure 5) ===\n{naive}");

    // Figure 6: the simplified form from the polyhedra scanner.
    let scanned = generate_scanned(&program, &[shackle]);
    println!("=== simplified shackled code (Figure 6) ===\n{scanned}");

    // Both forms compute exactly what the original computes.
    let params = BTreeMap::from([("N".to_string(), 60_i64)]);
    for (label, transformed) in [("naive", &naive), ("scanned", &scanned)] {
        let eq = check_equivalence(&program, transformed, &params, hash_init(1));
        println!(
            "{label}: max relative difference {:.3e} over {} statement instances",
            eq.max_rel_diff, eq.reference.instances
        );
        assert!(eq.within(1e-12));
    }
    println!("\nquickstart OK");
}
