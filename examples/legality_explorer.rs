//! Exploring the shackle design space (§6.1 / §6.2): enumerate shackled
//! reference choices, test each with the exact Omega-based legality
//! check, and use Theorem 2's access-matrix span test to decide how far
//! to grow a Cartesian product.
//!
//! Run with: `cargo run --release --example legality_explorer`

use data_shackle::core::span::unconstrained_refs;
use data_shackle::core::{check_legality_with_deps, Blocking, Shackle};
use data_shackle::ir::deps::dependences;
use data_shackle::ir::{kernels, ArrayRef};

fn main() {
    // --- matrix multiplication: every single shackle is legal ---
    let mm = kernels::matmul_ijk();
    let mm_deps = dependences(&mm);
    println!("matmul: {} dependences", mm_deps.len());
    for (array, idx) in [("C", ["I", "J"]), ("A", ["I", "K"]), ("B", ["K", "J"])] {
        let s = Shackle::new(
            &mm,
            Blocking::square(array, 2, &[0, 1], 25),
            vec![ArrayRef::vars(array, &idx)],
        );
        let legal = check_legality_with_deps(&mm, std::slice::from_ref(&s), &mm_deps).is_legal();
        let open = unconstrained_refs(&mm, &[s]);
        println!(
            "  shackle {array}[{}]: {}  (unconstrained refs: {})",
            idx.join(","),
            if legal { "legal" } else { "ILLEGAL" },
            open.len()
        );
    }
    // Theorem 2 in action: C alone leaves K unbounded; C × A closes it.
    let c = Shackle::new(
        &mm,
        Blocking::square("C", 2, &[0, 1], 25),
        vec![ArrayRef::vars("C", &["I", "J"])],
    );
    let a = Shackle::new(
        &mm,
        Blocking::square("A", 2, &[0, 1], 25),
        vec![ArrayRef::vars("A", &["I", "K"])],
    );
    println!(
        "  product C x A: unconstrained refs: {} -> stop growing the product",
        unconstrained_refs(&mm, &[c, a]).len()
    );

    // --- Cholesky: the six candidates of §6.1 ---
    let ch = kernels::cholesky_right();
    let ch_deps = dependences(&ch);
    println!("\nright-looking Cholesky: {} dependences", ch_deps.len());
    println!("six candidate shacklings (S1 fixed to A[J,J]):");
    let mut legal_count = 0;
    for s2 in [["I", "J"], ["J", "J"]] {
        for s3 in [["L", "K"], ["L", "J"], ["K", "J"]] {
            let s = Shackle::new(
                &ch,
                Blocking::square("A", 2, &[1, 0], 64),
                vec![
                    ArrayRef::vars("A", &["J", "J"]),
                    ArrayRef::vars("A", &s2),
                    ArrayRef::vars("A", &s3),
                ],
            );
            let rep = check_legality_with_deps(&ch, &[s], &ch_deps);
            if rep.is_legal() {
                legal_count += 1;
            }
            println!(
                "  S2 = A[{}], S3 = A[{}]: {}",
                s2.join(","),
                s3.join(","),
                if rep.is_legal() {
                    "legal".to_string()
                } else {
                    format!("ILLEGAL ({} violations)", rep.violations.len())
                }
            );
        }
    }
    println!(
        "=> {legal_count} of 6 legal (the paper's §6.1 text claims 2; its \
         literal second choice is refuted by the exact test — see \
         EXPERIMENTS.md)"
    );

    // --- direction matters: a forward recurrence only blocks forward ---
    use data_shackle::ir::{loop_, stmt, ArrayDecl, ScalarExpr, Statement};
    use data_shackle::polyhedra::LinExpr;
    let aref = |e: LinExpr| ArrayRef::new("A", vec![e]);
    let s = Statement::new(
        "S",
        aref(LinExpr::var("I")),
        ScalarExpr::from(aref(LinExpr::var("I") - LinExpr::constant(1))),
    );
    let p = data_shackle::ir::Program::new(
        "recurrence",
        vec!["N".into()],
        vec![ArrayDecl::new("A", vec![LinExpr::var("N")])],
        vec![s],
        vec![loop_(
            "I",
            LinExpr::constant(1),
            LinExpr::var("N"),
            vec![stmt(0)],
        )],
    );
    use data_shackle::core::CutSet;
    let fwd = Shackle::new(
        &p,
        Blocking::new("A", vec![CutSet::axis(0, 1, 16)]),
        vec![ArrayRef::vars("A", &["I"])],
    );
    let rev = Shackle::new(
        &p,
        Blocking::new("A", vec![CutSet::axis(0, 1, 16).reversed()]),
        vec![ArrayRef::vars("A", &["I"])],
    );
    println!("\nforward recurrence A[I] = A[I-1]:");
    println!(
        "  blocks forward:  {}",
        if data_shackle::core::check_legality(&p, &[fwd]).is_legal() {
            "legal"
        } else {
            "ILLEGAL"
        }
    );
    println!(
        "  blocks reversed: {}",
        if data_shackle::core::check_legality(&p, &[rev]).is_legal() {
            "legal"
        } else {
            "ILLEGAL"
        }
    );
    println!("\nlegality_explorer OK");
}
