//! Multi-level blocking (§6.3 / Figure 10): a Cartesian product of
//! products of shackles, one factor per memory level.
//!
//! Generates matrix multiplication blocked for a two-level hierarchy
//! (64-element outer blocks for L2, 8-element inner blocks for L1),
//! prints the generated code, verifies it, and measures per-level
//! misses on the simulated two-level hierarchy.
//!
//! Run with: `cargo run --release --example multi_level`

use data_shackle::core::{check_legality, scan::generate_scanned};
use data_shackle::exec::verify::{check_equivalence, hash_init};
use data_shackle::ir::kernels;
use data_shackle::kernels::shackles;
use data_shackle::kernels::trace::trace_execution;
use data_shackle::memsim::Hierarchy;
use std::collections::BTreeMap;

fn main() {
    let program = kernels::matmul_ijk();

    // outer factor: (M_C × M_A) at 64 — blocks for the slow level;
    // inner factor: (M_C × M_A) at 8 — blocks for the fast level.
    let factors = shackles::matmul_two_level(&program, 64, 8);
    assert!(check_legality(&program, &factors).is_legal());

    let blocked = generate_scanned(&program, &factors);
    println!("=== matmul blocked for two memory levels (Figure 10) ===\n{blocked}");

    let n = 96_i64;
    let params = BTreeMap::from([("N".to_string(), n)]);
    let eq = check_equivalence(&program, &blocked, &params, hash_init(2));
    println!("equivalence at n = {n}: {:.3e}\n", eq.max_rel_diff);
    assert!(eq.within(1e-12));

    // per-level misses, unblocked vs one-level vs two-level
    let one = generate_scanned(&program, &shackles::matmul_ca(&program, 64));
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "configuration", "L1 misses", "L2 misses", "mem cycles"
    );
    let n = 160_i64;
    let params = BTreeMap::from([("N".to_string(), n)]);
    for (label, prog) in [
        ("unblocked", &program),
        ("one-level (64)", &one),
        ("two-level (64, 8)", &blocked),
    ] {
        let mut h = Hierarchy::two_level();
        trace_execution(prog, &params, hash_init(2), &mut h);
        let ls = h.level_stats();
        println!(
            "{label:<22} {:>12} {:>12} {:>12}",
            ls[0].misses,
            ls[1].misses,
            h.cycles()
        );
    }
    println!("\nmulti_level OK");
}
