//! Multipass shackled execution (§8): relaxation codes.
//!
//! For a Gauss–Seidel sweep, no single traversal of the blocked array is
//! legal — "an array element is eventually affected by every other
//! element" — so the paper proposes executing, on each block visit, only
//! the instances whose dependences are satisfied, and re-sweeping the
//! array until everything has run. This example shows:
//!
//! 1. the exact legality test refuting both traversal directions;
//! 2. the multipass executor finishing in one sweep per time step, with
//!    the exact sequential result;
//! 3. a legal shackle (Cholesky) completing in a single sweep, as the
//!    theory demands.
//!
//! Run with: `cargo run --release --example relaxation_multipass`

use data_shackle::core::{check_legality, Blocking, CutSet, Shackle};
use data_shackle::exec::multipass::execute_multipass;
use data_shackle::exec::{execute_compiled, NullObserver, Workspace};
use data_shackle::ir::{kernels, ArrayRef};
use data_shackle::polyhedra::num::ceil_div;
use std::collections::BTreeMap;

fn main() {
    let program = kernels::gauss_seidel_1d();
    println!("=== input program ===\n{program}");

    // 1. both single-sweep traversals are illegal
    for reversed in [false, true] {
        let cut = if reversed {
            CutSet::axis(0, 1, 8).reversed()
        } else {
            CutSet::axis(0, 1, 8)
        };
        let s = Shackle::new(
            &program,
            Blocking::new("A", vec![cut]),
            vec![ArrayRef::vars("A", &["I"])],
        );
        let rep = check_legality(&program, &[s]);
        println!(
            "single-sweep blocks, {} order: {}",
            if reversed { "reversed" } else { "forward" },
            if rep.is_legal() { "legal" } else { "ILLEGAL" }
        );
        assert!(!rep.is_legal());
    }

    // 2. multipass execution
    let (n, steps) = (64_i64, 5_i64);
    let params = BTreeMap::from([("N".to_string(), n), ("S".to_string(), steps)]);
    let init = |_: &str, idx: &[usize]| ((idx[0] * 13) % 17) as f64 / 17.0 + 1.0;

    let mut reference = Workspace::for_program(&program, &params, init);
    execute_compiled(&program, &mut reference, &params, &mut NullObserver);

    let mut ws = Workspace::for_program(&program, &params, init);
    let run = execute_multipass(&program, &mut ws, &params, |inst| {
        vec![ceil_div(inst.ivec[1], 8)] // block A[I] by 8, forward sweeps
    });
    println!(
        "\nmultipass: {} instances in {} sweeps (S = {steps} time steps), \
         max relative difference vs. sequential: {:.1e}",
        run.instances,
        run.sweeps,
        ws.max_rel_diff(&reference)
    );
    assert!(run.sweeps > 1 && run.sweeps as i64 <= steps + 1);
    assert_eq!(ws.max_rel_diff(&reference), 0.0);

    // 3. a legal shackle completes in exactly one sweep
    let chol = kernels::cholesky_right();
    let cn = 24_i64;
    let cparams = BTreeMap::from([("N".to_string(), cn)]);
    let cinit = data_shackle::kernels::gen::spd_ws_init("A", cn as usize, 3);
    let mut cws = Workspace::for_program(&chol, &cparams, &cinit);
    let crun = execute_multipass(&chol, &mut cws, &cparams, |inst| {
        let (row, col) = match inst.stmt {
            0 => (inst.ivec[0], inst.ivec[0]),
            1 => (inst.ivec[1], inst.ivec[0]),
            _ => (inst.ivec[1], inst.ivec[2]),
        };
        vec![ceil_div(col, 8), ceil_div(row, 8)]
    });
    println!(
        "legal Cholesky writes shackle: {} instances in {} sweep(s)",
        crun.instances, crun.sweeps
    );
    assert_eq!(crun.sweeps, 1);
    println!("\nrelaxation_multipass OK");
}
