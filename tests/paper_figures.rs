//! Structural tests against the paper's worked code figures: the
//! generated code must have the shapes printed in Figures 3, 5, 6, 7/8,
//! 10 and 14(ii).

use data_shackle::core::{naive::generate_naive, scan::generate_scanned};
use data_shackle::ir::{kernels, Node, Program};
use data_shackle::kernels::shackles;

/// Count loop nodes in a program tree.
fn loop_count(p: &Program) -> usize {
    fn walk(nodes: &[Node]) -> usize {
        nodes
            .iter()
            .map(|n| match n {
                Node::Loop(l) => 1 + walk(&l.body),
                Node::If(_, b) => walk(b),
                Node::Stmt(_) => 0,
            })
            .sum()
    }
    walk(p.body())
}

/// Maximum loop nesting depth.
fn loop_depth(p: &Program) -> usize {
    fn walk(nodes: &[Node]) -> usize {
        nodes
            .iter()
            .map(|n| match n {
                Node::Loop(l) => 1 + walk(&l.body),
                Node::If(_, b) => walk(b),
                Node::Stmt(_) => 0,
            })
            .max()
            .unwrap_or(0)
    }
    walk(p.body())
}

#[test]
fn fig05_naive_matmul_has_guards_and_block_loops() {
    let p = kernels::matmul_ijk();
    let g = generate_naive(&p, &shackles::matmul_c(&p, 25));
    let text = g.to_string();
    // two block loops with ceil(N/25) trip counts
    assert!(text.contains("do b1 = 1 .. floord(N + 24, 25)"), "{text}");
    assert!(text.contains("do b2 = 1 .. floord(N + 24, 25)"), "{text}");
    // the original loops survive untouched
    for v in ["I", "J", "K"] {
        assert!(text.contains(&format!("do {v} = 1 .. N")), "{text}");
    }
    // and the statement sits under an affine guard on the block coords
    assert!(text.contains("if ("), "{text}");
    assert!(loop_depth(&g) == 5);
}

#[test]
fn fig06_scanned_matmul_single_shackle() {
    let p = kernels::matmul_ijk();
    let g = generate_scanned(&p, &shackles::matmul_c(&p, 25));
    let text = g.to_string();
    // guards simplified into bounds; K stays full-range (the shackle
    // leaves it unconstrained — the motivation for products)
    assert!(!text.contains("if ("), "{text}");
    assert!(text.contains("do K = 1 .. N"), "{text}");
    assert!(text.contains("25b1 - 24"), "{text}");
    assert_eq!(loop_depth(&g), 5);
}

#[test]
fn fig03_product_blocks_all_three_loops() {
    let p = kernels::matmul_ijk();
    let g = generate_scanned(&p, &shackles::matmul_ca(&p, 25));
    let text = g.to_string();
    assert!(!text.contains("if ("), "{text}");
    // K now has block-relative bounds: the third loop is tiled
    assert!(text.contains("do K = 25b"), "{text}");
    assert!(!text.contains("do K = 1 .. N"), "{text}");
}

#[test]
fn fig07_cholesky_sections() {
    // The four sections of Figures 7/8: updates to the diagonal block
    // from the left, baby Cholesky of the diagonal block, updates to
    // the off-diagonal block from the left, interleaved scale/updates.
    let p = kernels::cholesky_right();
    let g = generate_scanned(&p, &shackles::cholesky_writes(&p, 64));
    let text = g.to_string();
    // S3 appears in several sections (index-set splitting duplicated it)
    let s3_count = text.matches("S3:").count();
    assert!(s3_count >= 3, "expected S3 in >= 3 sections:\n{text}");
    // S1 (sqrt) appears under a block-relative J loop
    assert!(text.contains("sqrt"), "{text}");
    // there is an inner block loop for the off-diagonal row blocks,
    // starting after the diagonal block
    assert!(text.contains("do b2 = b1 + 1"), "{text}");
    // no residual guards in the steady state (the diagonal-block
    // sections between the b1 and b2 loops); boundary pieces after the
    // main nest may carry symbolic guards like `if (N - 2 >= 0)`
    let steady = text
        .split_once("do b1")
        .unwrap()
        .1
        .split_once("do b2")
        .unwrap()
        .0;
    assert!(
        !steady.contains("if ("),
        "unexpected guard in the steady state:\n{text}"
    );
}

#[test]
fn fig10_two_level_matmul_structure() {
    let p = kernels::matmul_ijk();
    let g = generate_scanned(&p, &shackles::matmul_two_level(&p, 64, 8));
    let text = g.to_string();
    // outer level-1 block loops with /64 bounds, inner level-2 loops
    // tied to the outer ones (8b within 64-blocks)
    assert!(text.contains("floord(N + 63, 64)"), "{text}");
    assert!(text.contains("8b"), "{text}");
    // point loops are block-relative at the innermost level
    assert!(!text.contains("do K = 1 .. N"), "{text}");
    // at least 3 block dims + 3 point dims survive (coincident block
    // coordinates are substituted away)
    assert!(loop_depth(&g) >= 6, "depth {} in:\n{text}", loop_depth(&g));
}

#[test]
fn fig14_adi_fusion_and_interchange() {
    let p = kernels::adi();
    let g = generate_scanned(&p, &shackles::adi_storage_order(&p));
    let text = g.to_string();
    // 1x1 blocks + storage order = fused loops, interchanged: exactly
    // two loops remain, both statements in the inner body, and the
    // subscripts are in terms of the block coordinates
    assert_eq!(loop_count(&g), 2, "{text}");
    assert_eq!(loop_depth(&g), 2, "{text}");
    assert_eq!(g.stmts().len(), 2);
    // column loop outer (k ≡ b1), row loop inner (i ≡ b2 + 1)
    assert!(text.contains("S1: X[b2 + 1, b1]"), "{text}");
    assert!(text.contains("S2: B[b2 + 1, b1]"), "{text}");
}

#[test]
fn naive_cholesky_keeps_original_tree() {
    let p = kernels::cholesky_right();
    let g = generate_naive(&p, &shackles::cholesky_writes(&p, 64));
    // naive form: block loops (2) + the original loops (4)
    assert_eq!(loop_count(&g), 6);
    assert_eq!(g.stmts().len(), 3);
}

#[test]
fn scanned_programs_validate_and_roundtrip_display() {
    for (p, f) in [
        (
            kernels::matmul_ijk(),
            shackles::matmul_c(&kernels::matmul_ijk(), 10),
        ),
        (
            kernels::cholesky_right(),
            shackles::cholesky_writes(&kernels::cholesky_right(), 10),
        ),
        (
            kernels::gauss(),
            shackles::gauss_writes(&kernels::gauss(), 10),
        ),
    ] {
        let g = generate_scanned(&p, &f);
        // Program::new validated the tree; display must render every
        // statement label
        let text = g.to_string();
        for s in g.stmts() {
            assert!(text.contains(s.label()));
        }
    }
}
