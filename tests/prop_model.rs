//! Differential validation of the `shackle-model` analytical miss
//! predictor against the exact cache simulator.
//!
//! Two layers:
//!
//! * a property test sweeping randomized block widths and
//!   power-of-two (fully associative) cache geometries, asserting the
//!   predicted miss count stays inside the documented error envelope
//!   of the simulated ground truth (DESIGN.md §"Analytical cost
//!   model" — the envelope is wide because the model never executes
//!   anything, but it is bounded both ways);
//! * a pinned ranking test mirroring the `modelperf` sweep at the CI
//!   quick grid: on every in-repo kernel, some simulated-optimal
//!   candidate must survive the analytical top-K cut — the property
//!   that makes two-phase search exact in practice.
//!
//! Conflict misses are deliberately out of the model's scope, so the
//! property test runs fully associative caches; the pinned test uses
//! the 4-way probe cache the real search runs on.

use data_shackle::core::search::{grid_shapes, reblock, two_phase, width_grid, SearchConfig};
use data_shackle::core::{check_legality, par, scan, Shackle};
use data_shackle::ir::{kernels, Program};
use data_shackle::prelude::{
    gen, ground_truth, predict, shackles, trace_execution, CacheConfig, KernelGeometry,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The probe cache the search harnesses score on
/// (`shackle_bench::searchperf::PROBE_CACHE`).
const PROBE_CACHE: CacheConfig = CacheConfig {
    size: 8 * 1024,
    line: 128,
    assoc: 4,
    latency: 0,
};
const PROBE_MEM_LATENCY: u64 = 60;

/// Documented error envelope of the predictor on adversarial
/// geometries: predicted misses within a factor of 24 of the exact
/// count, both directions (empirically the worst case over this domain
/// is ~17x; the mean error on the autotuning grids is far tighter —
/// see `miss_err_mean` in BENCH_model.json).
const ENVELOPE: f64 = 24.0;

type Init = Box<dyn Fn(&str, &[usize]) -> f64 + Sync>;

/// The differential corpus: small problem sizes so a single exact
/// simulation stays cheap in debug builds.
fn corpus() -> Vec<(Program, i64, Init)> {
    vec![
        (
            kernels::matmul_ijk(),
            32,
            Box::new(|_: &str, _: &[usize]| 1.0),
        ),
        (kernels::gauss(), 24, Box::new(gen::spd_ws_init("A", 24, 5))),
        (
            kernels::cholesky_right(),
            32,
            Box::new(gen::spd_ws_init("A", 32, 3)),
        ),
    ]
}

fn single_factor_shapes(program: &Program) -> Vec<Vec<Shackle>> {
    grid_shapes(
        program,
        &SearchConfig {
            width: 8,
            ..Default::default()
        },
    )
    .into_iter()
    .filter(|s| s.len() == 1)
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Predicted misses stay within the documented envelope of exact
    /// simulation across randomized block widths and power-of-two
    /// fully-associative cache geometries.
    #[test]
    fn model_within_envelope_of_simulation(
        kernel in 0usize..3,
        shape_pick in 0usize..64,
        width in 2i64..=32,
        size_exp in 1u32..=4,
        big_line in 0usize..2,
    ) {
        let (program, n, init) = corpus().swap_remove(kernel);
        let params = BTreeMap::from([("N".to_string(), n)]);
        let geom = KernelGeometry::new(&program, &params);
        let shapes = single_factor_shapes(&program);
        let shape = &shapes[shape_pick % shapes.len()];
        let product = reblock(&program, shape, &[width]);
        let cache = CacheConfig {
            size: (1 << size_exp) * 1024,
            line: if big_line == 1 { 128 } else { 64 },
            assoc: (1 << size_exp) * 1024 / if big_line == 1 { 128 } else { 64 },
            latency: 0,
        };
        let pred = predict(&geom, &product, &[cache], PROBE_MEM_LATENCY).levels[0].misses as f64;
        let code = scan::generate_scanned(&program, &product);
        let sim = ground_truth(&[cache], PROBE_MEM_LATENCY, |h| {
            trace_execution(&code, &params, &init, h);
        })
        .levels[0]
            .misses as f64;
        let (pred, sim) = (pred.max(1.0), sim.max(1.0));
        prop_assert!(
            pred <= sim * ENVELOPE && sim <= pred * ENVELOPE,
            "model {pred} vs sim {sim} outside the {ENVELOPE}x envelope \
             (width {width}, cache {:?})",
            cache
        );
    }
}

/// One kernel of the pinned ranking check: build the quick-style grid,
/// run the two-phase search, simulate everything, and require a
/// simulated-optimal candidate inside the model's top-K (ties in the
/// simulator are common on dense grids; any tied optimum in the top-K
/// makes the two-phase search exact).
fn assert_winner_survives(
    name: &str,
    program: &Program,
    probe_n: i64,
    init: &(dyn Fn(&str, &[usize]) -> f64 + Sync),
    shapes: &[Vec<Shackle>],
    widths: &[i64],
    top_k: usize,
) {
    let params = BTreeMap::from([("N".to_string(), probe_n)]);
    let geom = KernelGeometry::new(program, &params);
    let grid = width_grid(program, shapes, widths);
    assert!(!grid.is_empty(), "{name}: empty grid");
    let exact = |p: &Vec<Shackle>| {
        let code = scan::generate_scanned(program, p);
        ground_truth(&[PROBE_CACHE], PROBE_MEM_LATENCY, |h| {
            trace_execution(&code, &params, init, h);
        })
        .cycles
    };
    let outcome = two_phase(
        &grid,
        top_k,
        |p| predict(&geom, p, &[PROBE_CACHE], PROBE_MEM_LATENCY).cycles,
        exact,
    )
    .expect("non-empty grid");
    let sim_cycles: Vec<u64> = par::map(&grid, exact);
    let best_sim = *sim_cycles.iter().min().expect("non-empty grid");
    let rank = outcome
        .ranking
        .iter()
        .position(|&i| sim_cycles[i] == best_sim)
        .expect("ranking is a permutation");
    assert!(
        rank < top_k,
        "{name}: best simulated candidate has model rank {rank}, outside top-{top_k}"
    );
    // and therefore the two-phase winner IS a simulated optimum
    assert_eq!(
        outcome.winner_score, best_sim,
        "{name}: two-phase winner is not simulated-optimal"
    );
}

/// Every in-repo kernel keeps its simulated winner inside the model's
/// top-8 on the quick grid — the pinned acceptance of the two-phase
/// search (the full dense grids run in `modelperf`).
#[test]
fn simulated_winner_in_model_top_k_on_every_kernel() {
    let quick = [4i64, 8, 16];
    let auto_shapes = |p: &Program, pivot: i64| {
        grid_shapes(
            p,
            &SearchConfig {
                width: pivot,
                ..Default::default()
            },
        )
    };
    let two_level = |p: &Program, f: &[Shackle]| -> Option<Vec<Shackle>> {
        let mut s = f.to_vec();
        s.extend(reblock(p, f, &vec![4; f.len()]));
        check_legality(p, &s).is_legal().then_some(s)
    };

    let mm = kernels::matmul_ijk();
    assert_winner_survives(
        "matmul_ijk",
        &mm,
        48,
        &|_, _| 1.0,
        &auto_shapes(&mm, 8),
        &quick,
        8,
    );

    let chol = kernels::cholesky_right();
    assert_winner_survives(
        "cholesky_right",
        &chol,
        80,
        &gen::spd_ws_init("A", 80, 3),
        &auto_shapes(&chol, 16),
        &quick,
        8,
    );

    let choll = kernels::cholesky_left();
    assert_winner_survives(
        "cholesky_left",
        &choll,
        80,
        &gen::spd_ws_init("A", 80, 3),
        &auto_shapes(&choll, 16),
        &quick,
        8,
    );

    let gauss = kernels::gauss();
    assert_winner_survives(
        "gauss",
        &gauss,
        80,
        &gen::spd_ws_init("A", 80, 5),
        &auto_shapes(&gauss, 16),
        &quick,
        8,
    );

    let qr = kernels::qr_householder();
    let qr1 = shackles::qr_columns(&qr, 8);
    let mut qr_shapes = vec![qr1.clone()];
    qr_shapes.extend(two_level(&qr, &qr1));
    assert_winner_survives(
        "qr_householder",
        &qr,
        36,
        &data_shackle::exec::verify::hash_init(3),
        &qr_shapes,
        &quick,
        8,
    );

    let adi = kernels::adi();
    let adi1 = reblock(&adi, &shackles::adi_storage_order(&adi), &[8]);
    let mut adi_shapes = vec![adi1.clone()];
    adi_shapes.extend(two_level(&adi, &adi1));
    assert_winner_survives(
        "adi",
        &adi,
        64,
        &|name, idx| {
            if name == "B" {
                2.0 + (idx[0] % 7) as f64
            } else {
                (idx[0] % 5) as f64
            }
        },
        &adi_shapes,
        &quick,
        8,
    );
}
