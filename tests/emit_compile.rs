//! The strongest test of the code emitter: emit Rust source for a
//! shackled program, compile it with `rustc`, run it, and require the
//! result to match the interpreter **bit for bit** (Rust does not
//! reassociate floating point, and the emitted code performs the exact
//! operation sequence the interpreter does).

use data_shackle::core::scan::generate_scanned;
use data_shackle::exec::{execute_compiled, NullObserver, Workspace};
use data_shackle::ir::emit::{emit, Dialect};
use data_shackle::ir::kernels;
use data_shackle::kernels::shackles;
use std::collections::BTreeMap;
use std::process::Command;

/// Deterministic SPD-ish initializer shared (by construction) between
/// the interpreter side and the generated driver below.
fn init_value(n: usize, i: usize, j: usize) -> f64 {
    let (lo, hi) = (i.min(j), i.max(j));
    let frac = ((lo * 31 + hi * 17) % 97) as f64 / 97.0;
    if i == j {
        n as f64 + 1.0 + frac
    } else {
        frac
    }
}

fn checksum(ws: &Workspace, array: &str) -> f64 {
    let a = ws.array(array).expect("array");
    a.data()
        .iter()
        .enumerate()
        .map(|(k, v)| v * ((k % 7) as f64 + 1.0))
        .sum()
}

#[test]
fn emitted_rust_matches_interpreter_bit_for_bit() {
    let n: i64 = 18;
    let program = kernels::cholesky_right();
    let blocked = generate_scanned(&program, &shackles::cholesky_writes(&program, 4));

    // --- interpreter side ---
    let params = BTreeMap::from([("N".to_string(), n)]);
    let mut ws = Workspace::for_program(&blocked, &params, |_, idx| {
        init_value(n as usize, idx[0], idx[1])
    });
    execute_compiled(&blocked, &mut ws, &params, &mut NullObserver);
    let expect = checksum(&ws, "A");

    // --- emitted side ---
    let kernel_src = emit(&blocked, Dialect::Rust);
    let driver = format!(
        r#"{kernel_src}
fn init_value(n: usize, i: usize, j: usize) -> f64 {{
    let (lo, hi) = (i.min(j), i.max(j));
    let frac = ((lo * 31 + hi * 17) % 97) as f64 / 97.0;
    if i == j {{ n as f64 + 1.0 + frac }} else {{ frac }}
}}
fn main() {{
    let n: i64 = {n};
    let nu = n as usize;
    let mut a = vec![0.0_f64; nu * nu];
    for j in 1..=nu {{
        for i in 1..=nu {{
            a[(i - 1) + (j - 1) * nu] = init_value(nu, i, j);
        }}
    }}
    cholesky_right_shackled(n, &mut a);
    let checksum: f64 = a
        .iter()
        .enumerate()
        .map(|(k, v)| v * ((k % 7) as f64 + 1.0))
        .sum();
    println!("{{}}", checksum.to_bits());
}}
"#
    );

    let dir = std::env::temp_dir().join(format!("shackle_emit_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let src_path = dir.join("driver.rs");
    let bin_path = dir.join("driver_bin");
    std::fs::write(&src_path, driver).expect("write driver");

    let rustc = Command::new("rustc")
        .arg("-O")
        .arg("--edition")
        .arg("2021")
        .arg("-o")
        .arg(&bin_path)
        .arg(&src_path)
        .output()
        .expect("rustc must be runnable in the test environment");
    assert!(
        rustc.status.success(),
        "rustc failed:\n{}",
        String::from_utf8_lossy(&rustc.stderr)
    );

    let run = Command::new(&bin_path)
        .output()
        .expect("run emitted binary");
    assert!(run.status.success());
    let bits: u64 = String::from_utf8_lossy(&run.stdout)
        .trim()
        .parse()
        .expect("checksum bits");
    let got = f64::from_bits(bits);

    assert_eq!(
        got.to_bits(),
        expect.to_bits(),
        "emitted code diverged from the interpreter: {got} vs {expect}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn emitted_c_is_wellformed_for_every_kernel() {
    // No C compiler is assumed; check structural well-formedness of the
    // C emission for every kernel in the registry (including the rank-3
    // tensor contraction) and their shackled forms.
    for (_, mk) in kernels::all() {
        let p = mk();
        for src in [emit(&p, Dialect::C), emit(&p, Dialect::Rust)] {
            assert_eq!(
                src.matches('{').count(),
                src.matches('}').count(),
                "unbalanced braces in emission of {}",
                p.name()
            );
            assert_eq!(src.matches('(').count(), src.matches(')').count());
        }
    }
    // and a shackled form with guards + divided bounds
    let p = kernels::matmul_ijk();
    let blocked = data_shackle::core::naive::generate_naive(&p, &shackles::matmul_c(&p, 25));
    let src = emit(&blocked, Dialect::C);
    assert!(src.contains("if ("), "{src}");
    assert!(src.contains("floord("), "{src}");
}
