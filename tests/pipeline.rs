//! End-to-end pipeline tests: for every kernel of the paper, build the
//! IR, apply the canonical shackle(s), check legality, generate both
//! code forms, and execute everything to prove semantic equivalence.

use data_shackle::core::{check_legality, naive::generate_naive, scan::generate_scanned};
use data_shackle::exec::verify::{check_equivalence, hash_init};
use data_shackle::ir::kernels;
use data_shackle::kernels::gen::{banded_ws_init, spd_ws_init};
use data_shackle::kernels::shackles;
use std::collections::BTreeMap;

fn params(n: i64) -> BTreeMap<String, i64> {
    BTreeMap::from([("N".to_string(), n)])
}

#[test]
fn matmul_single_shackle_pipeline() {
    let p = kernels::matmul_ijk();
    let f = shackles::matmul_c(&p, 7);
    assert!(check_legality(&p, &f).is_legal());
    let naive = generate_naive(&p, &f);
    let scanned = generate_scanned(&p, &f);
    for n in [1, 6, 7, 13, 21, 30] {
        let eq = check_equivalence(&p, &naive, &params(n), hash_init(1));
        assert!(eq.max_rel_diff == 0.0, "naive n={n}: {}", eq.max_rel_diff);
        let eq = check_equivalence(&p, &scanned, &params(n), hash_init(1));
        assert!(eq.max_rel_diff == 0.0, "scanned n={n}: {}", eq.max_rel_diff);
    }
}

#[test]
fn matmul_product_pipeline() {
    let p = kernels::matmul_ijk();
    let f = shackles::matmul_ca(&p, 5);
    assert!(check_legality(&p, &f).is_legal());
    let scanned = generate_scanned(&p, &f);
    for n in [4, 5, 11, 23] {
        let eq = check_equivalence(&p, &scanned, &params(n), hash_init(2));
        assert_eq!(eq.max_rel_diff, 0.0, "n={n}");
    }
}

#[test]
fn matmul_two_level_pipeline() {
    let p = kernels::matmul_ijk();
    let f = shackles::matmul_two_level(&p, 8, 2);
    assert!(check_legality(&p, &f).is_legal());
    let scanned = generate_scanned(&p, &f);
    for n in [7, 16, 19] {
        let eq = check_equivalence(&p, &scanned, &params(n), hash_init(3));
        assert_eq!(eq.max_rel_diff, 0.0, "n={n}");
    }
}

#[test]
fn cholesky_writes_pipeline() {
    let p = kernels::cholesky_right();
    let f = shackles::cholesky_writes(&p, 4);
    assert!(check_legality(&p, &f).is_legal());
    let naive = generate_naive(&p, &f);
    let scanned = generate_scanned(&p, &f);
    for n in [1, 3, 4, 9, 17] {
        let init = spd_ws_init("A", n as usize, 4);
        let eq = check_equivalence(&p, &naive, &params(n), &init);
        assert!(eq.within(1e-10), "naive n={n}: {}", eq.max_rel_diff);
        let eq = check_equivalence(&p, &scanned, &params(n), &init);
        assert!(eq.within(1e-10), "scanned n={n}: {}", eq.max_rel_diff);
    }
}

#[test]
fn cholesky_product_pipeline_gives_fully_blocked_code() {
    let p = kernels::cholesky_right();
    let f = shackles::cholesky_product(&p, 4);
    assert!(check_legality(&p, &f).is_legal());
    let scanned = generate_scanned(&p, &f);
    for n in [5, 8, 13] {
        let init = spd_ws_init("A", n as usize, 5);
        let eq = check_equivalence(&p, &scanned, &params(n), &init);
        assert!(eq.within(1e-10), "n={n}: {}", eq.max_rel_diff);
    }
}

#[test]
fn left_looking_cholesky_shackles_too() {
    // Shackling the left-looking source (Fig. 1(iii)) through its
    // writes is also legal and equivalent.
    let p = kernels::cholesky_left();
    let f = shackles::cholesky_writes(&p, 4);
    assert!(check_legality(&p, &f).is_legal());
    let scanned = generate_scanned(&p, &f);
    for n in [4, 9, 14] {
        let init = spd_ws_init("A", n as usize, 6);
        let eq = check_equivalence(&p, &scanned, &params(n), &init);
        assert!(eq.within(1e-10), "n={n}: {}", eq.max_rel_diff);
    }
}

#[test]
fn qr_column_shackle_pipeline() {
    let p = kernels::qr_householder();
    let f = shackles::qr_columns(&p, 4);
    assert!(check_legality(&p, &f).is_legal());
    let scanned = generate_scanned(&p, &f);
    for n in [2, 5, 9, 12] {
        let eq = check_equivalence(&p, &scanned, &params(n), hash_init(7));
        assert!(eq.within(1e-9), "n={n}: {}", eq.max_rel_diff);
    }
}

#[test]
fn gauss_product_pipeline() {
    let p = kernels::gauss();
    let f = shackles::gauss_product(&p, 4);
    assert!(check_legality(&p, &f).is_legal());
    let scanned = generate_scanned(&p, &f);
    for n in [3, 8, 13] {
        let init = spd_ws_init("A", n as usize, 8);
        let eq = check_equivalence(&p, &scanned, &params(n), &init);
        assert!(eq.within(1e-9), "n={n}: {}", eq.max_rel_diff);
    }
}

#[test]
fn adi_shackle_pipeline() {
    let p = kernels::adi();
    let f = shackles::adi_storage_order(&p);
    assert!(check_legality(&p, &f).is_legal());
    let scanned = generate_scanned(&p, &f);
    let init = |name: &str, idx: &[usize]| {
        if name == "B" {
            2.0 + ((idx[0] * 3 + idx[1]) % 11) as f64 / 11.0
        } else {
            ((idx[0] + 2 * idx[1]) % 7) as f64 / 7.0
        }
    };
    for n in [2, 5, 12, 20] {
        let eq = check_equivalence(&p, &scanned, &params(n), init);
        assert_eq!(eq.max_rel_diff, 0.0, "n={n}");
    }
}

#[test]
fn banded_cholesky_pipeline() {
    let p = kernels::banded_cholesky();
    let f = shackles::banded_writes(&p, 4);
    assert!(check_legality(&p, &f).is_legal());
    let naive = generate_naive(&p, &f);
    let scanned = generate_scanned(&p, &f);
    for (n, bw) in [(8i64, 2i64), (12, 5), (16, 3)] {
        let params = BTreeMap::from([("N".to_string(), n), ("P".to_string(), bw)]);
        let init = banded_ws_init("A", n as usize, bw as usize, 9);
        let eq = check_equivalence(&p, &naive, &params, &init);
        assert!(eq.within(1e-10), "naive n={n} p={bw}");
        let eq = check_equivalence(&p, &scanned, &params, &init);
        assert!(eq.within(1e-10), "scanned n={n} p={bw}");
    }
}

#[test]
fn backsolve_reversed_shackle_pipeline() {
    // §8: the triangular back-solve's data flows from high indices to
    // low, so the legal blocking walks X bottom-to-top (reversed cut
    // set). The scanned code must still be semantically identical.
    let p = kernels::backsolve();
    let f = shackles::backsolve_reversed(&p, 4);
    assert!(check_legality(&p, &f).is_legal());
    let naive = generate_naive(&p, &f);
    let scanned = generate_scanned(&p, &f);
    for n in [1, 3, 4, 9, 14] {
        let eq = check_equivalence(&p, &naive, &params(n), hash_init(11));
        assert_eq!(eq.max_rel_diff, 0.0, "naive n={n}");
        let eq = check_equivalence(&p, &scanned, &params(n), hash_init(11));
        assert_eq!(eq.max_rel_diff, 0.0, "scanned n={n}");
    }
}

#[test]
fn syrk_product_pipeline() {
    let p = kernels::syrk();
    let f = shackles::syrk_product(&p, 5);
    assert!(check_legality(&p, &f).is_legal());
    let scanned = generate_scanned(&p, &f);
    for n in [1, 4, 5, 11, 17] {
        let eq = check_equivalence(&p, &scanned, &params(n), hash_init(12));
        assert_eq!(eq.max_rel_diff, 0.0, "n={n}");
    }
}

#[test]
fn jacobi2d_rectangular_tiles_pipeline() {
    // Rectangular tiles: independent per-dimension widths (tall-narrow
    // here), the grid extension this wave adds to the search.
    let p = kernels::jacobi2d();
    let f = shackles::jacobi2d_tiles(&p, 7, 2);
    assert!(check_legality(&p, &f).is_legal());
    let scanned = generate_scanned(&p, &f);
    for n in [2, 3, 8, 15, 23] {
        let eq = check_equivalence(&p, &scanned, &params(n), hash_init(13));
        assert_eq!(eq.max_rel_diff, 0.0, "n={n}");
    }
}

#[test]
fn tensor_contract_partial_blocking_pipeline() {
    // The tensor contraction's rank-2 reduction chain admits only the
    // output blocking; the partial product still reorders legally and
    // executes identically.
    let p = kernels::tensor_contract();
    let f = shackles::tensor_c(&p, 3, 5);
    assert!(check_legality(&p, &f).is_legal());
    let scanned = generate_scanned(&p, &f);
    for n in [1, 4, 7, 10] {
        let eq = check_equivalence(&p, &scanned, &params(n), hash_init(14));
        assert_eq!(eq.max_rel_diff, 0.0, "n={n}");
    }
}

#[test]
fn naive_and_scanned_forms_agree_with_each_other() {
    // Transitivity check made explicit: the two generated forms agree
    // directly (not only each against the source).
    let p = kernels::cholesky_right();
    let f = shackles::cholesky_writes(&p, 3);
    let naive = generate_naive(&p, &f);
    let scanned = generate_scanned(&p, &f);
    let n = 11;
    let init = spd_ws_init("A", n as usize, 10);
    let eq = check_equivalence(&naive, &scanned, &params(n), &init);
    assert_eq!(eq.max_rel_diff, 0.0);
}
