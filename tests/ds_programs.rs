//! The shipped `.ds` example programs parse, shackle, and verify —
//! the file-based workflow a downstream user would follow.

use data_shackle::core::{check_legality, scan::generate_scanned, Blocking, CutSet, Shackle};
use data_shackle::exec::verify::{check_equivalence, hash_init};
use data_shackle::ir::parse::parse;
use data_shackle::ir::ArrayRef;
use std::collections::BTreeMap;

fn load(name: &str) -> data_shackle::ir::Program {
    let path = format!("{}/examples/programs/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse(&src).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn smooth_blocks_and_verifies() {
    let p = load("smooth.ds");
    let s = Shackle::on_writes(&p, Blocking::square("B", 2, &[0, 1], 4));
    assert!(check_legality(&p, std::slice::from_ref(&s)).is_legal());
    let blocked = generate_scanned(&p, &[s]);
    let params = BTreeMap::from([("N".to_string(), 13_i64)]);
    let eq = check_equivalence(&p, &blocked, &params, hash_init(11));
    assert_eq!(eq.max_rel_diff, 0.0);
}

#[test]
fn wavefront_forward_legal_reversed_refuted() {
    let p = load("wavefront.ds");
    let fwd = Shackle::on_writes(&p, Blocking::square("A", 2, &[0, 1], 8));
    assert!(check_legality(&p, std::slice::from_ref(&fwd)).is_legal());
    let blocked = generate_scanned(&p, &[fwd]);
    let params = BTreeMap::from([("N".to_string(), 20_i64)]);
    let eq = check_equivalence(&p, &blocked, &params, hash_init(12));
    assert_eq!(eq.max_rel_diff, 0.0);

    let rev = Shackle::new(
        &p,
        Blocking::new(
            "A",
            vec![
                CutSet::axis(0, 2, 8).reversed(),
                CutSet::axis(1, 2, 8).reversed(),
            ],
        ),
        vec![ArrayRef::vars("A", &["I", "J"])],
    );
    let rep = check_legality(&p, &[rev]);
    assert!(!rep.is_legal());
    // every violation carries a materializable witness
    assert!(rep.violations.iter().all(|v| v.witness_point(64).is_some()));
}
