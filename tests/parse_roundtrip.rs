//! Round-trip tests across the whole toolchain: generated (scanned)
//! programs serialize to the concrete syntax, parse back, and execute
//! identically.

use data_shackle::core::scan::generate_scanned;
use data_shackle::exec::verify::{check_equivalence, hash_init, spd_init};
use data_shackle::ir::kernels;
use data_shackle::ir::parse::{parse, to_source};
use data_shackle::kernels::shackles;
use std::collections::BTreeMap;

#[test]
fn scanned_programs_roundtrip_and_execute() {
    let cases: Vec<(data_shackle::ir::Program, Vec<data_shackle::core::Shackle>)> = vec![
        {
            let p = kernels::matmul_ijk();
            let f = shackles::matmul_ca(&p, 5);
            (p, f)
        },
        {
            let p = kernels::cholesky_right();
            let f = shackles::cholesky_writes(&p, 4);
            (p, f)
        },
        {
            let p = kernels::adi();
            let f = shackles::adi_storage_order(&p);
            (p, f)
        },
    ];
    for (p, f) in cases {
        let scanned = generate_scanned(&p, &f);
        let text = to_source(&scanned);
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", scanned.name()));
        // serialization is a fixed point
        assert_eq!(to_source(&reparsed), text, "{}", scanned.name());
        // and the reparsed program executes identically to the original
        let n = 9_i64;
        let params = BTreeMap::from([("N".to_string(), n)]);
        type Init = Box<dyn Fn(&str, &[usize]) -> f64>;
        let init: Init = if p.name().contains("cholesky") {
            Box::new(spd_init("A", n as usize, 3))
        } else if p.name() == "adi" {
            Box::new(|name: &str, idx: &[usize]| {
                if name == "B" {
                    2.0 + ((idx[0] * 3 + idx[1]) % 11) as f64 / 11.0
                } else {
                    ((idx[0] + 2 * idx[1]) % 7) as f64 / 7.0
                }
            })
        } else {
            Box::new(hash_init(3))
        };
        let eq = check_equivalence(&p, &reparsed, &params, init);
        assert!(
            eq.within(1e-10),
            "{}: reparsed code diverged: {}",
            scanned.name(),
            eq.max_rel_diff
        );
    }
}

#[test]
fn handwritten_kernel_through_the_full_pipeline() {
    // A user writes a kernel in the concrete syntax, shackles it, and
    // verifies — no Rust IR construction involved.
    let src = "
program smooth
param N
array A(N, N)
array B(N, N)

do J = 1 .. N
  do I = 1 .. N
    S1: B[I, J] = A[I, J] + 1
";
    let p = parse(src).expect("parses");
    let shackle = data_shackle::core::Shackle::on_writes(
        &p,
        data_shackle::core::Blocking::square("B", 2, &[0, 1], 3),
    );
    assert!(data_shackle::core::check_legality(&p, std::slice::from_ref(&shackle)).is_legal());
    let blocked = generate_scanned(&p, &[shackle]);
    let params = BTreeMap::from([("N".to_string(), 10_i64)]);
    let eq = check_equivalence(&p, &blocked, &params, hash_init(4));
    assert_eq!(eq.max_rel_diff, 0.0);
}
