//! # data-shackle
//!
//! A from-scratch reproduction of **Kodukula, Ahmed & Pingali,
//! "Data-centric Multi-level Blocking" (PLDI 1997)** — the *data
//! shackling* program transformation — together with every substrate its
//! evaluation needs: an Omega-test polyhedral engine, a loop-nest IR
//! with exact dependence analysis, a reference interpreter, a cache
//! simulator standing in for the paper's IBM SP-2, and the dense
//! linear-algebra kernels and BLAS-3 baselines of §7.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`polyhedra`] | `shackle-polyhedra` | exact integer linear arithmetic (Omega test) |
//! | [`ir`] | `shackle-ir` | loop-nest IR, schedules, dependences, paper kernels |
//! | [`core`] | `shackle-core` | shackles, legality, products, code generation |
//! | [`exec`] | `shackle-exec` | interpreter, equivalence harness |
//! | [`memsim`] | `shackle-memsim` | cache hierarchies, MFLOPS model |
//! | [`model`] | `shackle-model` | analytical per-level miss predictor (search first pass) |
//! | [`kernels`] | `shackle-kernels` | native kernels, BLAS substrate, canonical shackles |
//! | [`probe`] | `shackle-probe` | structured instrumentation: phase spans, counters, histograms |
//!
//! [`prelude`] flattens the common surface of all of them into one
//! `use data_shackle::prelude::*;`.
//!
//! # Quick start
//!
//! Block matrix multiplication the data-centric way (the paper's
//! Figures 5 → 6):
//!
//! ```
//! use data_shackle::core::{check_legality, scan::generate_scanned, Blocking, Shackle};
//! use data_shackle::exec::verify::{check_equivalence, hash_init};
//! use data_shackle::ir::kernels;
//! use std::collections::BTreeMap;
//!
//! // 1. the input program (Figure 1(i))
//! let program = kernels::matmul_ijk();
//!
//! // 2. a data shackle: 25×25 blocks of C, statement tied to C[I,J]
//! let shackle = Shackle::on_writes(&program, Blocking::square("C", 2, &[0, 1], 25));
//!
//! // 3. Theorem 1's legality test (exact, via the Omega test)
//! assert!(check_legality(&program, &[shackle.clone()]).is_legal());
//!
//! // 4. generate simplified blocked code (Figure 6)
//! let blocked = generate_scanned(&program, &[shackle]);
//! println!("{blocked}");
//!
//! // 5. prove it computes the same thing
//! let params = BTreeMap::from([("N".to_string(), 40_i64)]);
//! let eq = check_equivalence(&program, &blocked, &params, hash_init(7));
//! assert!(eq.within(1e-12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use shackle_core as core;
pub use shackle_exec as exec;
pub use shackle_ir as ir;
pub use shackle_kernels as kernels;
pub use shackle_memsim as memsim;
pub use shackle_model as model;
pub use shackle_polyhedra as polyhedra;
pub use shackle_probe as probe;

pub mod prelude {
    //! One-stop imports for driving the whole pipeline.
    //!
    //! Flattens [`shackle_core::prelude`] (IR construction, dependences,
    //! legality, search, codegen) together with the execution engines,
    //! the trace capture bridge, the memory-hierarchy simulators and the
    //! probe instrumentation:
    //!
    //! ```
    //! use data_shackle::prelude::*;
    //!
    //! let program = kernels::matmul_ijk();
    //! let shackle = Shackle::on_writes(&program, Blocking::square("C", 2, &[0, 1], 25));
    //! assert!(check_legality(&program, &[shackle]).is_legal());
    //! ```

    pub use shackle_core::prelude::*;

    pub use shackle_exec::{
        compile, execute, execute_compiled, verify, Access, CompiledProgram, ExecStats,
        NullObserver, Observer, Workspace,
    };
    pub use shackle_kernels::compact::{CaptureObserver, CompactTrace};
    pub use shackle_kernels::trace::{trace_execution, AddressMap, MemObserver, ELEM_BYTES};
    pub use shackle_kernels::{gen, shackles, traced};
    pub use shackle_memsim::{
        ground_truth, AccessSink, Cache, CacheConfig, ConfigError, GroundTruth, Hierarchy,
        LevelStats, PerfModel, StackSim, Tlb, TlbConfig,
    };
    pub use shackle_model::{predict, predict_with, KernelGeometry, ModelConfig, Prediction};
    pub use shackle_probe as probe;
}
