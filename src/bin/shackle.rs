//! `shackle` — command-line driver for the data-shackling toolchain.
//!
//! ```text
//! shackle <kernel> [--width W] [--emit input|naive|scanned|rust|c]
//!                  [--product] [--verify N] [--search] [--deps]
//! ```
//!
//! Kernels: `matmul`, `cholesky`, `cholesky-left`, `qr`, `adi`, `gauss`,
//! `banded`, `backsolve`.
//!
//! Examples:
//!
//! ```text
//! shackle matmul --emit scanned --width 25       # Figure 6
//! shackle cholesky --product --emit scanned      # fully blocked (Fig. 7+)
//! shackle cholesky --search                      # enumerate legal shackles
//! shackle adi --emit scanned --verify 50         # Fig. 14 + equivalence
//! ```

use data_shackle::core::search::{enumerate_legal, SearchConfig};
use data_shackle::core::{check_legality, naive::generate_naive, scan::generate_scanned, Shackle};
use data_shackle::exec::verify::check_equivalence;
use data_shackle::ir::{kernels, Program};
use data_shackle::kernels::shackles;
use std::collections::BTreeMap;
use std::process::ExitCode;

struct Options {
    kernel: String,
    width: i64,
    emit: String,
    product: bool,
    verify: Option<i64>,
    search: bool,
    deps: bool,
    file: Option<String>,
    block: Option<String>,
    refs: Option<String>,
    order: Option<String>,
    reversed: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: shackle <kernel|-> [--width W] [--emit MODE] [--product] \
         [--verify N] [--search] [--deps]\n\
         \x20      [--file PROG.ds [--block ARRAY --refs 'R1;R2;…' [--order DIGITS]]]\n\
         emit modes: input naive scanned rust c\n\
         built-in kernels: matmul cholesky cholesky-left qr adi gauss banded backsolve gauss-seidel\n\
         with --file, the kernel name is ignored (use `-`); --block/--refs build a\n\
         shackle on the parsed program (one reference per statement, textual order;\n\
         --order lists 0-based dimensions cut first, e.g. 10 for columns-then-rows)"
    );
    ExitCode::from(2)
}

fn parse(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let kernel = args.next().ok_or("missing kernel name")?;
    let mut opts = Options {
        kernel,
        width: 32,
        emit: "scanned".to_string(),
        product: false,
        verify: None,
        search: false,
        deps: false,
        file: None,
        block: None,
        refs: None,
        order: None,
        reversed: false,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--width" => {
                opts.width = args
                    .next()
                    .ok_or("--width needs a value")?
                    .parse()
                    .map_err(|e| format!("bad width: {e}"))?;
            }
            "--emit" => {
                opts.emit = args.next().ok_or("--emit needs a value")?;
                if !["input", "naive", "scanned", "rust", "c"].contains(&opts.emit.as_str()) {
                    return Err(format!("unknown emit mode {}", opts.emit));
                }
            }
            "--verify" => {
                opts.verify = Some(
                    args.next()
                        .ok_or("--verify needs a size")?
                        .parse()
                        .map_err(|e| format!("bad size: {e}"))?,
                );
            }
            "--product" => opts.product = true,
            "--search" => opts.search = true,
            "--deps" => opts.deps = true,
            "--file" => opts.file = Some(args.next().ok_or("--file needs a path")?),
            "--block" => opts.block = Some(args.next().ok_or("--block needs an array")?),
            "--refs" => opts.refs = Some(args.next().ok_or("--refs needs a ;-list")?),
            "--order" => opts.order = Some(args.next().ok_or("--order needs digits")?),
            "--reversed" => opts.reversed = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

fn kernel_program(name: &str) -> Option<Program> {
    Some(match name {
        "matmul" => kernels::matmul_ijk(),
        "cholesky" => kernels::cholesky_right(),
        "cholesky-left" => kernels::cholesky_left(),
        "qr" => kernels::qr_householder(),
        "adi" => kernels::adi(),
        "gauss" => kernels::gauss(),
        "banded" => kernels::banded_cholesky(),
        "backsolve" => kernels::backsolve(),
        "gauss-seidel" => kernels::gauss_seidel_1d(),
        _ => return None,
    })
}

fn canonical_shackles(name: &str, p: &Program, width: i64, product: bool) -> Option<Vec<Shackle>> {
    Some(match (name, product) {
        ("matmul", false) => shackles::matmul_c(p, width),
        ("matmul", true) => shackles::matmul_ca(p, width),
        ("cholesky" | "cholesky-left", false) => shackles::cholesky_writes(p, width),
        ("cholesky" | "cholesky-left", true) => shackles::cholesky_product(p, width),
        ("qr", _) => shackles::qr_columns(p, width),
        ("adi", _) => shackles::adi_storage_order(p),
        ("gauss", false) => shackles::gauss_writes(p, width),
        ("gauss", true) => shackles::gauss_product(p, width),
        ("banded", _) => shackles::banded_writes(p, width),
        ("backsolve", _) => shackles::backsolve_reversed(p, width),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let opts = match parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("shackle: {e}");
            return usage();
        }
    };
    let program = if let Some(path) = &opts.file {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("shackle: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match data_shackle::ir::parse::parse(&src) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("shackle: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match kernel_program(&opts.kernel) {
            Some(p) => p,
            None => {
                eprintln!("shackle: unknown kernel {}", opts.kernel);
                return usage();
            }
        }
    };

    if opts.deps {
        let deps = data_shackle::ir::deps::dependences(&program);
        println!("{} dependences:", deps.len());
        for d in &deps {
            println!("  {d}");
        }
        return ExitCode::SUCCESS;
    }

    if opts.search {
        let legal = enumerate_legal(
            &program,
            &SearchConfig {
                width: opts.width,
                ..Default::default()
            },
        );
        println!("{} legal single shackles:", legal.len());
        for c in &legal {
            println!(
                "  {} (unconstrained refs: {})",
                c.shackle,
                c.unconstrained.len()
            );
        }
        return ExitCode::SUCCESS;
    }

    if opts.emit == "input" {
        print!("{program}");
        return ExitCode::SUCCESS;
    }

    let factors = if let (Some(array), Some(refs)) = (&opts.block, &opts.refs) {
        // custom shackle on a (possibly parsed) program
        let decl = match program.array(array) {
            Some(d) => d,
            None => {
                eprintln!("shackle: program has no array {array}");
                return ExitCode::FAILURE;
            }
        };
        let rank = decl.rank();
        let order: Vec<usize> = match &opts.order {
            Some(digits) => digits
                .chars()
                .filter_map(|c| c.to_digit(10))
                .map(|d| d as usize)
                .collect(),
            None => (0..rank).collect(),
        };
        let mut parsed_refs = Vec::new();
        for piece in refs.split(';') {
            match data_shackle::ir::parse::parse_ref_str(piece.trim()) {
                Ok(r) => parsed_refs.push(r),
                Err(e) => {
                    eprintln!("shackle: bad reference `{piece}`: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let cuts: Vec<data_shackle::core::CutSet> = order
            .iter()
            .map(|&d| {
                let c = data_shackle::core::CutSet::axis(d, rank, opts.width);
                if opts.reversed {
                    c.reversed()
                } else {
                    c
                }
            })
            .collect();
        let blocking = data_shackle::core::Blocking::new(array.as_str(), cuts);
        vec![Shackle::new(&program, blocking, parsed_refs)]
    } else {
        match canonical_shackles(&opts.kernel, &program, opts.width, opts.product) {
            Some(f) => f,
            None => {
                eprintln!(
                    "shackle: no canonical {} shackle for kernel {} \
                     (use --block/--refs for custom programs)",
                    if opts.product { "product" } else { "single" },
                    opts.kernel
                );
                return ExitCode::FAILURE;
            }
        }
    };
    let report = check_legality(&program, &factors);
    if !report.is_legal() {
        eprintln!(
            "shackle: ILLEGAL shackle ({} of {} dependences violated):",
            report.violations.len(),
            report.dependences_checked
        );
        for v in report.violations.iter().take(5) {
            eprintln!("  {v}");
        }
        return ExitCode::FAILURE;
    }
    let transformed = match opts.emit.as_str() {
        "naive" => generate_naive(&program, &factors),
        _ => generate_scanned(&program, &factors),
    };
    match opts.emit.as_str() {
        "rust" => print!(
            "{}",
            data_shackle::ir::emit::emit(&transformed, data_shackle::ir::emit::Dialect::Rust)
        ),
        "c" => print!(
            "{}",
            data_shackle::ir::emit::emit(&transformed, data_shackle::ir::emit::Dialect::C)
        ),
        _ => print!("{transformed}"),
    }

    if let Some(n) = opts.verify {
        let mut params = BTreeMap::from([("N".to_string(), n)]);
        if program.params().iter().any(|p| p == "P") {
            params.insert("P".to_string(), (n / 4).max(1));
        }
        let init = verify_init(&opts.kernel, n);
        let eq = check_equivalence(&program, &transformed, &params, init);
        eprintln!(
            "verify n={n}: max relative difference {:.3e} over {} instances",
            eq.max_rel_diff, eq.reference.instances
        );
        if !eq.within(1e-9) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// A workspace initializer closure.
type Init = Box<dyn Fn(&str, &[usize]) -> f64>;

/// A numerically safe initializer per kernel (SPD matrices for the
/// factorizations, bounded-away-from-zero divisors for ADI/backsolve).
fn verify_init(kernel: &str, n: i64) -> Init {
    let n = n as usize;
    match kernel {
        "cholesky" | "cholesky-left" | "gauss" => {
            Box::new(data_shackle::kernels::gen::spd_ws_init("A", n, 7))
        }
        "banded" => Box::new(data_shackle::kernels::gen::banded_ws_init(
            "A",
            n,
            (n / 4).max(1),
            7,
        )),
        "adi" => Box::new(|name: &str, idx: &[usize]| {
            if name == "B" {
                2.0 + ((idx[0] * 31 + idx[1] * 7) % 97) as f64 / 97.0
            } else {
                ((idx[0] * 13 + idx[1] * 3) % 89) as f64 / 89.0
            }
        }),
        "backsolve" => Box::new(|name: &str, idx: &[usize]| {
            if name == "U" {
                if idx[0] == idx[1] {
                    4.0
                } else if idx[0] < idx[1] {
                    1.0 / ((idx[0] * 7 + idx[1]) % 9 + 2) as f64
                } else {
                    0.0
                }
            } else {
                1.0 + (idx[0] % 5) as f64
            }
        }),
        _ => Box::new(data_shackle::exec::verify::hash_init(7)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_vec(args: &[&str]) -> Result<Options, String> {
        parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse_vec(&["cholesky"]).unwrap();
        assert_eq!(o.kernel, "cholesky");
        assert_eq!(o.width, 32);
        assert_eq!(o.emit, "scanned");
        assert!(!o.product && !o.search && !o.deps && !o.reversed);
        assert!(o.verify.is_none() && o.file.is_none());
    }

    #[test]
    fn all_flags_parse() {
        let o = parse_vec(&[
            "-",
            "--width",
            "16",
            "--emit",
            "rust",
            "--product",
            "--verify",
            "50",
            "--file",
            "p.ds",
            "--block",
            "A",
            "--refs",
            "A[I]",
            "--order",
            "10",
            "--reversed",
        ])
        .unwrap();
        assert_eq!(o.width, 16);
        assert_eq!(o.emit, "rust");
        assert!(o.product && o.reversed);
        assert_eq!(o.verify, Some(50));
        assert_eq!(o.file.as_deref(), Some("p.ds"));
        assert_eq!(o.block.as_deref(), Some("A"));
        assert_eq!(o.order.as_deref(), Some("10"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_vec(&[]).is_err());
        assert!(parse_vec(&["matmul", "--width"]).is_err());
        assert!(parse_vec(&["matmul", "--width", "abc"]).is_err());
        assert!(parse_vec(&["matmul", "--emit", "fortran"]).is_err());
        assert!(parse_vec(&["matmul", "--bogus"]).is_err());
    }

    #[test]
    fn kernel_and_shackle_tables_agree() {
        // every built-in kernel with a canonical single shackle passes
        // its own legality check
        for k in [
            "matmul",
            "cholesky",
            "cholesky-left",
            "qr",
            "adi",
            "gauss",
            "banded",
            "backsolve",
        ] {
            let p = kernel_program(k).expect(k);
            let f = canonical_shackles(k, &p, 8, false).expect(k);
            assert!(check_legality(&p, &f).is_legal(), "{k}");
        }
    }
}
